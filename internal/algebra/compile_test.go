package algebra

import (
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/value"
)

// compileCases is a catalog of expressions spanning every node kind the
// compiler specializes plus the interpreted fallbacks, evaluated over
// exprRow and a row of nulls.
func compileCases() []Expr {
	c := func(v value.Value) Expr { return &Const{V: v} }
	return []Expr{
		c(value.Int(42)),
		&ColRef{Name: "n"},
		&ColRef{Name: "name"},
		&Cmp{Op: OpEq, L: &ColRef{Name: "n"}, R: c(value.Int(4004))},
		&Cmp{Op: OpNe, L: &ColRef{Name: "n"}, R: c(value.Int(4004))},
		&Cmp{Op: OpLt, L: &ColRef{Name: "price"}, R: c(value.Float(100))},
		&Cmp{Op: OpLe, L: c(value.Int(1)), R: c(value.Int(1))},
		&Cmp{Op: OpGt, L: &ColRef{Name: "n"}, R: &ColRef{Name: "price"}},
		&Cmp{Op: OpGe, L: &ColRef{Name: "when"}, R: c(value.Time(time.Date(1990, 1, 1, 0, 0, 0, 0, time.UTC)))},
		&Logic{Op: OpAnd,
			L: &Cmp{Op: OpGt, L: &ColRef{Name: "n"}, R: c(value.Int(100))},
			R: &Cmp{Op: OpLt, L: &ColRef{Name: "price"}, R: c(value.Float(100))}},
		&Logic{Op: OpOr,
			L: &Cmp{Op: OpGt, L: &ColRef{Name: "n"}, R: c(value.Int(1e9))},
			R: &IsNull{E: &ColRef{Name: "name"}}},
		&Logic{Op: OpAnd, L: c(value.Null), R: c(value.Bool(false))},
		&Logic{Op: OpOr, L: c(value.Null), R: c(value.Bool(true))},
		&Not{E: &Cmp{Op: OpEq, L: &ColRef{Name: "name"}, R: c(value.Str("Fruit Co"))}},
		&Not{E: c(value.Null)},
		&Arith{Op: OpAdd, L: &ColRef{Name: "n"}, R: c(value.Int(1))},
		&Arith{Op: OpSub, L: &ColRef{Name: "price"}, R: c(value.Float(0.5))},
		&Arith{Op: OpMul, L: c(value.Int(6)), R: c(value.Int(7))},
		&Arith{Op: OpDiv, L: &ColRef{Name: "n"}, R: c(value.Int(0))}, // errors per row
		&Neg{E: &ColRef{Name: "n"}},
		&IsNull{E: &ColRef{Name: "price"}},
		&IsNull{E: &ColRef{Name: "price"}, Negate: true},
		&InList{E: &ColRef{Name: "name"}, List: []Expr{c(value.Str("Nut Co")), c(value.Str("Fruit Co"))}},
		&InList{E: &ColRef{Name: "n"}, List: []Expr{c(value.Int(1)), c(value.Null)}, Negate: true},
		&Like{E: &ColRef{Name: "name"}, Pattern: "Fruit%"},
		&Like{E: &ColRef{Name: "name"}, Pattern: "%Co_", Negate: true},
		&Like{E: &ColRef{Name: "n"}, Pattern: "4%"}, // type error per row
		&IndRef{Col: "n", Indicator: "source"},
		&MetaRef{Col: "n", Indicator: "source", Meta: "credibility"},
		&SrcContains{Col: "name", Source: "nexis"},
		&Call{Name: "LENGTH", Args: []Expr{&ColRef{Name: "name"}}},
		&Call{Name: "AGE", Args: []Expr{&ColRef{Name: "when"}}},
	}
}

// TestCompileMatchesEval pins the compiled evaluators to the interpreted
// ones: same value or same error, over a populated row and an all-null row.
func TestCompileMatchesEval(t *testing.T) {
	nullRow := relation.Tuple{Cells: make([]relation.Cell, 4)}
	for i := range nullRow.Cells {
		nullRow.Cells[i].V = value.Null
	}
	ctx := &EvalContext{Now: exprNow}
	for _, e := range compileCases() {
		if err := e.Bind(exprSchema()); err != nil {
			t.Fatalf("bind %s: %v", e.String(), err)
		}
		f := Compile(e)
		for _, row := range []relation.Tuple{exprRow(), nullRow} {
			want, wantErr := e.Eval(row, ctx)
			got, gotErr := f(row, ctx)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: interpreted err %v, compiled err %v", e.String(), wantErr, gotErr)
			}
			if wantErr == nil && !value.Equal(want, got) {
				t.Fatalf("%s: interpreted %v, compiled %v", e.String(), want, got)
			}
		}
	}
}

// TestCompilePredicateMatchesTruth pins CompilePredicate to Truth.
func TestCompilePredicateMatchesTruth(t *testing.T) {
	ctx := &EvalContext{Now: exprNow}
	row := exprRow()
	for _, e := range compileCases() {
		if err := e.Bind(exprSchema()); err != nil {
			t.Fatalf("bind %s: %v", e.String(), err)
		}
		want, wantErr := Truth(e, row, ctx)
		got, gotErr := CompilePredicate(e)(row, ctx)
		if (wantErr == nil) != (gotErr == nil) || want != got {
			t.Fatalf("%s: Truth=(%v,%v) compiled=(%v,%v)", e.String(), want, wantErr, got, gotErr)
		}
	}
}

// TestSimplifyFolds pins the bind-time rewrites: constant subtrees fold,
// Kleene identities collapse, and anything that could error or observe the
// clock stays put.
func TestSimplifyFolds(t *testing.T) {
	c := func(v value.Value) Expr { return &Const{V: v} }
	x := func() Expr { return &Cmp{Op: OpGt, L: &ColRef{Name: "n"}, R: c(value.Int(5))} }
	cases := []struct {
		in   Expr
		want string // String() of the simplified tree
	}{
		{&Cmp{Op: OpEq, L: c(value.Int(1)), R: c(value.Int(1))}, "true"},
		{&Cmp{Op: OpEq, L: c(value.Int(1)), R: c(value.Int(2))}, "false"},
		{&Logic{Op: OpAnd, L: x(), R: c(value.Bool(false))}, "false"},
		{&Logic{Op: OpAnd, L: c(value.Bool(false)), R: x()}, "false"},
		{&Logic{Op: OpAnd, L: x(), R: c(value.Bool(true))}, x().String()},
		{&Logic{Op: OpOr, L: x(), R: c(value.Bool(true))}, "true"},
		{&Logic{Op: OpOr, L: c(value.Bool(false)), R: x()}, x().String()},
		// null is not a determined side: null AND x must survive.
		{&Logic{Op: OpAnd, L: c(value.Null), R: x()}, (&Logic{Op: OpAnd, L: c(value.Null), R: x()}).String()},
		{&Not{E: c(value.Bool(true))}, "false"},
		{&Arith{Op: OpAdd, L: c(value.Int(1)), R: c(value.Int(2))}, "3"},
		// Nested: (1 < 2 AND x) collapses to x.
		{&Logic{Op: OpAnd, L: &Cmp{Op: OpLt, L: c(value.Int(1)), R: c(value.Int(2))}, R: x()}, x().String()},
		// Division by zero must not fold: the error belongs to execution.
		{&Arith{Op: OpDiv, L: c(value.Int(1)), R: c(value.Int(0))}, "(1 / 0)"},
		// NOW() is statement-dependent; calls never fold.
		{&Cmp{Op: OpGe, L: &Call{Name: "NOW"}, R: &Call{Name: "NOW"}}, "(NOW() >= NOW())"},
		{&IsNull{E: c(value.Null)}, "true"},
		{&InList{E: c(value.Int(2)), List: []Expr{c(value.Int(1)), c(value.Int(2))}}, "true"},
	}
	for _, tc := range cases {
		in := tc.in.String()
		got := Simplify(tc.in).String()
		if got != tc.want {
			t.Errorf("Simplify(%s) = %s, want %s", in, got, tc.want)
		}
	}
}

// TestSimplifyPreservesSemantics: simplified trees evaluate identically to
// the originals over real rows, including three-valued edge cases.
func TestSimplifyPreservesSemantics(t *testing.T) {
	ctx := &EvalContext{Now: exprNow}
	row := exprRow()
	for _, e := range compileCases() {
		orig := CloneExpr(e)
		if err := orig.Bind(exprSchema()); err != nil {
			t.Fatalf("bind %s: %v", orig.String(), err)
		}
		want, wantErr := orig.Eval(row, ctx)

		simp := Simplify(CloneExpr(e))
		if err := simp.Bind(exprSchema()); err != nil {
			t.Fatalf("bind simplified %s: %v", simp.String(), err)
		}
		got, gotErr := simp.Eval(row, ctx)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: orig err %v, simplified err %v", e.String(), wantErr, gotErr)
		}
		if wantErr == nil && !value.Equal(want, got) {
			t.Fatalf("%s: orig %v, simplified (%s) %v", e.String(), want, simp.String(), got)
		}
	}
}

// TestConstTruth classifies constants the way Select's Truth would.
func TestConstTruth(t *testing.T) {
	cases := []struct {
		e              Expr
		truth, decided bool
	}{
		{&Const{V: value.Bool(true)}, true, true},
		{&Const{V: value.Bool(false)}, false, true},
		{&Const{V: value.Null}, false, true},
		{&Const{V: value.Int(1)}, false, true}, // non-bool is never "true"
		{&ColRef{Name: "n"}, false, false},
	}
	for _, tc := range cases {
		truth, decided := ConstTruth(tc.e)
		if truth != tc.truth || decided != tc.decided {
			t.Errorf("ConstTruth(%s) = (%v,%v), want (%v,%v)", tc.e.String(), truth, decided, tc.truth, tc.decided)
		}
	}
}
