// Package algebra implements the quality-extended relational algebra of the
// attribute-based and polygen models: the usual operators (scan, select,
// project, join, union, difference, aggregate, sort, limit) lifted to
// relations whose cells carry quality indicator tags and polygen source
// sets.
//
// Propagation semantics (documented here once, implemented throughout):
//
//   - Cells copied verbatim (projection of a column, either side of a join)
//     keep their tags and source sets unchanged.
//   - Derived cells (computed projection expressions, aggregate results)
//     keep only the tags on which every contributing cell agrees
//     (tag.Intersect) and take the union of contributing source sets, the
//     polygen rule for derived data.
//
// Expressions use SQL-style three-valued logic: comparisons against null
// yield null, AND/OR follow Kleene semantics, and Select keeps a tuple only
// when its predicate is definitely true.
package algebra

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// EvalContext carries query-wide evaluation state.
type EvalContext struct {
	// Now is the query's notion of the current instant, used by AGE() and
	// NOW(). Fixing it per query keeps results deterministic.
	Now time.Time
}

// Expr is a bound-or-bindable expression over a tuple.
type Expr interface {
	// Bind resolves column and indicator references against the schema.
	// It must be called before Eval.
	Bind(s *schema.Schema) error
	// Eval computes the expression over one tuple.
	Eval(row relation.Tuple, ctx *EvalContext) (value.Value, error)
	// String renders QQL-compatible syntax.
	String() string
	// Walk visits this node and all children.
	Walk(fn func(Expr))
}

// Const is a literal value.
type Const struct{ V value.Value }

// Bind implements Expr.
func (c *Const) Bind(*schema.Schema) error { return nil }

// Eval implements Expr.
func (c *Const) Eval(relation.Tuple, *EvalContext) (value.Value, error) { return c.V, nil }

// String implements Expr.
func (c *Const) String() string { return c.V.Literal() }

// Walk implements Expr.
func (c *Const) Walk(fn func(Expr)) { fn(c) }

// ColRef references an attribute's application value by name.
type ColRef struct {
	Name string
	idx  int
}

// Bind implements Expr.
func (c *ColRef) Bind(s *schema.Schema) error {
	c.idx = s.ColIndex(c.Name)
	if c.idx < 0 {
		return fmt.Errorf("algebra: unknown column %q in %s", c.Name, s.Name)
	}
	return nil
}

// Eval implements Expr.
func (c *ColRef) Eval(row relation.Tuple, _ *EvalContext) (value.Value, error) {
	if c.idx < 0 || c.idx >= len(row.Cells) {
		return value.Null, fmt.Errorf("algebra: column %q not bound", c.Name)
	}
	return row.Cells[c.idx].V, nil
}

// String implements Expr.
func (c *ColRef) String() string { return c.Name }

// Walk implements Expr.
func (c *ColRef) Walk(fn func(Expr)) { fn(c) }

// Col returns the bound column index, for planner introspection; -1 when
// unbound.
func (c *ColRef) Col() int { return c.idx }

// IndRef references a quality indicator value tagged on a column's cells,
// written col@indicator in QQL. An untagged cell evaluates to null.
type IndRef struct {
	Col       string
	Indicator string
	idx       int
}

// Bind implements Expr.
func (r *IndRef) Bind(s *schema.Schema) error {
	r.idx = s.ColIndex(r.Col)
	if r.idx < 0 {
		return fmt.Errorf("algebra: unknown column %q in %s", r.Col, s.Name)
	}
	return nil
}

// Eval implements Expr.
func (r *IndRef) Eval(row relation.Tuple, _ *EvalContext) (value.Value, error) {
	if r.idx < 0 || r.idx >= len(row.Cells) {
		return value.Null, fmt.Errorf("algebra: indicator ref %s@%s not bound", r.Col, r.Indicator)
	}
	v, ok := row.Cells[r.idx].Tags.Get(r.Indicator)
	if !ok {
		return value.Null, nil
	}
	return v, nil
}

// String implements Expr.
func (r *IndRef) String() string { return r.Col + "@" + r.Indicator }

// Walk implements Expr.
func (r *IndRef) Walk(fn func(Expr)) { fn(r) }

// MetaRef references a meta-quality indicator: a tag describing another
// tag's value (Premise 1.4), written col@indicator@meta in QQL. Untagged
// levels evaluate to null.
type MetaRef struct {
	Col       string
	Indicator string
	Meta      string
	idx       int
}

// Bind implements Expr.
func (r *MetaRef) Bind(s *schema.Schema) error {
	r.idx = s.ColIndex(r.Col)
	if r.idx < 0 {
		return fmt.Errorf("algebra: unknown column %q in %s", r.Col, s.Name)
	}
	return nil
}

// Eval implements Expr.
func (r *MetaRef) Eval(row relation.Tuple, _ *EvalContext) (value.Value, error) {
	if r.idx < 0 || r.idx >= len(row.Cells) {
		return value.Null, fmt.Errorf("algebra: meta ref %s@%s@%s not bound", r.Col, r.Indicator, r.Meta)
	}
	v, ok := row.Cells[r.idx].MetaFor(r.Indicator).Get(r.Meta)
	if !ok {
		return value.Null, nil
	}
	return v, nil
}

// String implements Expr.
func (r *MetaRef) String() string { return r.Col + "@" + r.Indicator + "@" + r.Meta }

// Walk implements Expr.
func (r *MetaRef) Walk(fn func(Expr)) { fn(r) }

// SrcContains tests whether a column's polygen source set contains a source,
// written SOURCE(col, 'name') in QQL.
type SrcContains struct {
	Col    string
	Source string
	idx    int
}

// Bind implements Expr.
func (s *SrcContains) Bind(sc *schema.Schema) error {
	s.idx = sc.ColIndex(s.Col)
	if s.idx < 0 {
		return fmt.Errorf("algebra: unknown column %q in %s", s.Col, sc.Name)
	}
	return nil
}

// Eval implements Expr.
func (s *SrcContains) Eval(row relation.Tuple, _ *EvalContext) (value.Value, error) {
	if s.idx < 0 || s.idx >= len(row.Cells) {
		return value.Null, fmt.Errorf("algebra: SOURCE(%s) not bound", s.Col)
	}
	return value.Bool(row.Cells[s.idx].Sources.Contains(s.Source)), nil
}

// String implements Expr.
func (s *SrcContains) String() string {
	return "SOURCE(" + s.Col + ", " + value.Str(s.Source).Literal() + ")"
}

// Walk implements Expr.
func (s *SrcContains) Walk(fn func(Expr)) { fn(s) }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var cmpNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

// Cmp compares two expressions. Null operands yield null (unknown).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Bind implements Expr.
func (c *Cmp) Bind(s *schema.Schema) error {
	if err := c.L.Bind(s); err != nil {
		return err
	}
	return c.R.Bind(s)
}

// Eval implements Expr.
func (c *Cmp) Eval(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
	l, err := c.L.Eval(row, ctx)
	if err != nil {
		return value.Null, err
	}
	r, err := c.R.Eval(row, ctx)
	if err != nil {
		return value.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	cv := value.Compare(l, r)
	var out bool
	switch c.Op {
	case OpEq:
		out = cv == 0
	case OpNe:
		out = cv != 0
	case OpLt:
		out = cv < 0
	case OpLe:
		out = cv <= 0
	case OpGt:
		out = cv > 0
	case OpGe:
		out = cv >= 0
	}
	return value.Bool(out), nil
}

// String implements Expr.
func (c *Cmp) String() string {
	return "(" + c.L.String() + " " + cmpNames[c.Op] + " " + c.R.String() + ")"
}

// Walk implements Expr.
func (c *Cmp) Walk(fn func(Expr)) { fn(c); c.L.Walk(fn); c.R.Walk(fn) }

// LogicOp is a boolean connective.
type LogicOp uint8

// Boolean connectives.
const (
	OpAnd LogicOp = iota
	OpOr
)

// Logic combines two boolean expressions with Kleene three-valued AND/OR.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// Bind implements Expr.
func (l *Logic) Bind(s *schema.Schema) error {
	if err := l.L.Bind(s); err != nil {
		return err
	}
	return l.R.Bind(s)
}

// Eval implements Expr.
func (l *Logic) Eval(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
	lv, err := l.L.Eval(row, ctx)
	if err != nil {
		return value.Null, err
	}
	// Short-circuit on determined results.
	if !lv.IsNull() && lv.Kind() == value.KindBool {
		if l.Op == OpAnd && !lv.AsBool() {
			return value.Bool(false), nil
		}
		if l.Op == OpOr && lv.AsBool() {
			return value.Bool(true), nil
		}
	}
	rv, err := l.R.Eval(row, ctx)
	if err != nil {
		return value.Null, err
	}
	lb, lNull := boolOf(lv)
	rb, rNull := boolOf(rv)
	if l.Op == OpAnd {
		switch {
		case !lNull && !lb, !rNull && !rb:
			return value.Bool(false), nil
		case lNull || rNull:
			return value.Null, nil
		default:
			return value.Bool(true), nil
		}
	}
	switch {
	case !lNull && lb, !rNull && rb:
		return value.Bool(true), nil
	case lNull || rNull:
		return value.Null, nil
	default:
		return value.Bool(false), nil
	}
}

func boolOf(v value.Value) (b, isNull bool) {
	if v.IsNull() {
		return false, true
	}
	return v.AsBool(), false
}

// String implements Expr.
func (l *Logic) String() string {
	op := " AND "
	if l.Op == OpOr {
		op = " OR "
	}
	return "(" + l.L.String() + op + l.R.String() + ")"
}

// Walk implements Expr.
func (l *Logic) Walk(fn func(Expr)) { fn(l); l.L.Walk(fn); l.R.Walk(fn) }

// Not negates a boolean expression (null stays null).
type Not struct{ E Expr }

// Bind implements Expr.
func (n *Not) Bind(s *schema.Schema) error { return n.E.Bind(s) }

// Eval implements Expr.
func (n *Not) Eval(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
	v, err := n.E.Eval(row, ctx)
	if err != nil || v.IsNull() {
		return value.Null, err
	}
	return value.Bool(!v.AsBool()), nil
}

// String implements Expr.
func (n *Not) String() string { return "(NOT (" + n.E.String() + "))" }

// Walk implements Expr.
func (n *Not) Walk(fn func(Expr)) { fn(n); n.E.Walk(fn) }

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

var arithNames = [...]string{"+", "-", "*", "/"}

// Arith applies +, -, *, / with the value package's typing rules.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Bind implements Expr.
func (a *Arith) Bind(s *schema.Schema) error {
	if err := a.L.Bind(s); err != nil {
		return err
	}
	return a.R.Bind(s)
}

// Eval implements Expr.
func (a *Arith) Eval(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
	l, err := a.L.Eval(row, ctx)
	if err != nil {
		return value.Null, err
	}
	r, err := a.R.Eval(row, ctx)
	if err != nil {
		return value.Null, err
	}
	switch a.Op {
	case OpAdd:
		return value.Add(l, r)
	case OpSub:
		return value.Sub(l, r)
	case OpMul:
		return value.Mul(l, r)
	default:
		return value.Div(l, r)
	}
}

// String implements Expr.
func (a *Arith) String() string {
	return "(" + a.L.String() + " " + arithNames[a.Op] + " " + a.R.String() + ")"
}

// Walk implements Expr.
func (a *Arith) Walk(fn func(Expr)) { fn(a); a.L.Walk(fn); a.R.Walk(fn) }

// Neg is unary minus.
type Neg struct{ E Expr }

// Bind implements Expr.
func (n *Neg) Bind(s *schema.Schema) error { return n.E.Bind(s) }

// Eval implements Expr.
func (n *Neg) Eval(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
	v, err := n.E.Eval(row, ctx)
	if err != nil {
		return value.Null, err
	}
	return value.Neg(v)
}

// String implements Expr.
func (n *Neg) String() string { return "-(" + n.E.String() + ")" }

// Walk implements Expr.
func (n *Neg) Walk(fn func(Expr)) { fn(n); n.E.Walk(fn) }

// IsNull tests nullness; with Negate it is IS NOT NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

// Bind implements Expr.
func (i *IsNull) Bind(s *schema.Schema) error { return i.E.Bind(s) }

// Eval implements Expr.
func (i *IsNull) Eval(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
	v, err := i.E.Eval(row, ctx)
	if err != nil {
		return value.Null, err
	}
	return value.Bool(v.IsNull() != i.Negate), nil
}

// String implements Expr.
func (i *IsNull) String() string {
	if i.Negate {
		return "(" + i.E.String() + " IS NOT NULL)"
	}
	return "(" + i.E.String() + " IS NULL)"
}

// Walk implements Expr.
func (i *IsNull) Walk(fn func(Expr)) { fn(i); i.E.Walk(fn) }

// InList is SQL IN / NOT IN over a literal list.
type InList struct {
	E      Expr
	List   []Expr
	Negate bool
}

// Bind implements Expr.
func (in *InList) Bind(s *schema.Schema) error {
	if err := in.E.Bind(s); err != nil {
		return err
	}
	for _, e := range in.List {
		if err := e.Bind(s); err != nil {
			return err
		}
	}
	return nil
}

// Eval implements Expr.
func (in *InList) Eval(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
	v, err := in.E.Eval(row, ctx)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() {
		return value.Null, nil
	}
	sawNull := false
	for _, e := range in.List {
		ev, err := e.Eval(row, ctx)
		if err != nil {
			return value.Null, err
		}
		if ev.IsNull() {
			sawNull = true
			continue
		}
		if value.EqualPtr(&v, &ev) {
			return value.Bool(!in.Negate), nil
		}
	}
	if sawNull {
		return value.Null, nil
	}
	return value.Bool(in.Negate), nil
}

// String implements Expr.
func (in *InList) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	op := " IN ("
	if in.Negate {
		op = " NOT IN ("
	}
	return "(" + in.E.String() + op + strings.Join(parts, ", ") + "))"
}

// Walk implements Expr.
func (in *InList) Walk(fn func(Expr)) {
	fn(in)
	in.E.Walk(fn)
	for _, e := range in.List {
		e.Walk(fn)
	}
}

// Like is SQL LIKE with % (any run) and _ (any single byte) wildcards.
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
}

// Bind implements Expr.
func (l *Like) Bind(s *schema.Schema) error { return l.E.Bind(s) }

// Eval implements Expr.
func (l *Like) Eval(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
	v, err := l.E.Eval(row, ctx)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() {
		return value.Null, nil
	}
	if v.Kind() != value.KindString {
		return value.Null, fmt.Errorf("algebra: LIKE on non-string %v", v.Kind())
	}
	return value.Bool(likeMatch(l.Pattern, v.AsString()) != l.Negate), nil
}

// likeMatch implements %/_ glob matching with linear backtracking on %.
func likeMatch(pattern, s string) bool {
	p, q := 0, 0
	starP, starQ := -1, 0
	for q < len(s) {
		switch {
		case p < len(pattern) && (pattern[p] == '_' || pattern[p] == s[q]):
			p++
			q++
		case p < len(pattern) && pattern[p] == '%':
			starP, starQ = p, q
			p++
		case starP >= 0:
			starQ++
			p, q = starP+1, starQ
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '%' {
		p++
	}
	return p == len(pattern)
}

// String implements Expr.
func (l *Like) String() string {
	op := " LIKE "
	if l.Negate {
		op = " NOT LIKE "
	}
	return "(" + l.E.String() + op + value.Str(l.Pattern).Literal() + ")"
}

// Walk implements Expr.
func (l *Like) Walk(fn func(Expr)) { fn(l); l.E.Walk(fn) }

// Call is a builtin scalar function application. Supported functions:
//
//	NOW()            current query instant
//	AGE(t)           NOW() - t, a duration (the paper's derived indicator)
//	LENGTH(s)        string length
//	LOWER(s) UPPER(s)
//	ABS(x)           absolute numeric value
//	YEAR(t)          year of a time
//	COALESCE(a,...)  first non-null argument
type Call struct {
	Name string
	Args []Expr
}

// Bind implements Expr.
func (c *Call) Bind(s *schema.Schema) error {
	name := strings.ToUpper(c.Name)
	arity, ok := builtinArity[name]
	if !ok {
		return fmt.Errorf("algebra: unknown function %q", c.Name)
	}
	if arity >= 0 && len(c.Args) != arity {
		return fmt.Errorf("algebra: %s takes %d argument(s), got %d", name, arity, len(c.Args))
	}
	if arity < 0 && len(c.Args) == 0 {
		return fmt.Errorf("algebra: %s needs at least one argument", name)
	}
	for _, a := range c.Args {
		if err := a.Bind(s); err != nil {
			return err
		}
	}
	return nil
}

var builtinArity = map[string]int{
	"NOW": 0, "AGE": 1, "LENGTH": 1, "LOWER": 1, "UPPER": 1,
	"ABS": 1, "YEAR": 1, "COALESCE": -1,
}

// Eval implements Expr.
func (c *Call) Eval(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
	name := strings.ToUpper(c.Name)
	if name == "COALESCE" {
		for _, a := range c.Args {
			v, err := a.Eval(row, ctx)
			if err != nil {
				return value.Null, err
			}
			if !v.IsNull() {
				return v, nil
			}
		}
		return value.Null, nil
	}
	args := make([]value.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(row, ctx)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	switch name {
	case "NOW":
		return value.Time(ctx.Now), nil
	case "AGE":
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindTime {
			return value.Null, fmt.Errorf("algebra: AGE wants a time, got %v", args[0].Kind())
		}
		return value.Duration(ctx.Now.Sub(args[0].AsTime())), nil
	case "LENGTH":
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.Int(int64(len(args[0].AsString()))), nil
	case "LOWER":
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.Str(strings.ToLower(args[0].AsString())), nil
	case "UPPER":
		if args[0].IsNull() {
			return value.Null, nil
		}
		return value.Str(strings.ToUpper(args[0].AsString())), nil
	case "ABS":
		if args[0].IsNull() {
			return value.Null, nil
		}
		if !args[0].Numeric() {
			return value.Null, fmt.Errorf("algebra: ABS wants a number, got %v", args[0].Kind())
		}
		if args[0].Kind() == value.KindInt {
			x := args[0].AsInt()
			if x < 0 {
				x = -x
			}
			return value.Int(x), nil
		}
		f := args[0].AsFloat()
		if f < 0 {
			f = -f
		}
		return value.Float(f), nil
	case "YEAR":
		if args[0].IsNull() {
			return value.Null, nil
		}
		if args[0].Kind() != value.KindTime {
			return value.Null, fmt.Errorf("algebra: YEAR wants a time, got %v", args[0].Kind())
		}
		return value.Int(int64(args[0].AsTime().Year())), nil
	}
	return value.Null, fmt.Errorf("algebra: unknown function %q", c.Name)
}

// String implements Expr.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return strings.ToUpper(c.Name) + "(" + strings.Join(parts, ", ") + ")"
}

// Walk implements Expr.
func (c *Call) Walk(fn func(Expr)) {
	fn(c)
	for _, a := range c.Args {
		a.Walk(fn)
	}
}

// ReferencedCols returns the distinct bound column indexes referenced by the
// expression (through ColRef, IndRef and SrcContains nodes), in first-seen
// order. Used to compute derived-cell provenance.
func ReferencedCols(e Expr) []int {
	var out []int
	seen := map[int]bool{}
	add := func(idx int) {
		if idx >= 0 && !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	e.Walk(func(n Expr) {
		switch v := n.(type) {
		case *ColRef:
			add(v.idx)
		case *IndRef:
			add(v.idx)
		case *MetaRef:
			add(v.idx)
		case *SrcContains:
			add(v.idx)
		}
	})
	return out
}

// Truth evaluates a predicate and reports whether it is definitely true.
func Truth(e Expr, row relation.Tuple, ctx *EvalContext) (bool, error) {
	v, err := e.Eval(row, ctx)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Kind() == value.KindBool && v.AsBool(), nil
}
