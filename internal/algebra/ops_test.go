package algebra

import (
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/tag"
	"repro/internal/value"
)

var opsNow = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

func ctx() *EvalContext { return &EvalContext{Now: opsNow} }

func tradesSchema() *schema.Schema {
	return schema.MustNew("trade", []schema.Attr{
		{Name: "acct", Kind: value.KindInt},
		{Name: "ticker", Kind: value.KindString},
		{Name: "qty", Kind: value.KindInt},
		{Name: "price", Kind: value.KindFloat},
	})
}

func stocksSchema() *schema.Schema {
	return schema.MustNew("stock", []schema.Attr{
		{Name: "symbol", Kind: value.KindString},
		{Name: "last", Kind: value.KindFloat},
	})
}

func tradesRel() *relation.Relation {
	r := relation.New(tradesSchema())
	rows := []struct {
		acct  int64
		tick  string
		qty   int64
		price float64
		src   string
	}{
		{1, "IBM", 100, 98.5, "feedA"},
		{1, "DEC", 50, 22.0, "feedB"},
		{2, "IBM", 200, 99.0, "feedA"},
		{3, "HP", 75, 44.0, "feedC"},
		{2, "DEC", 10, 21.5, "feedB"},
	}
	for _, row := range rows {
		tags := tag.NewSet(tag.Tag{Indicator: "source", Value: value.Str(row.src)})
		r.Tuples = append(r.Tuples, relation.Tuple{Cells: []relation.Cell{
			{V: value.Int(row.acct)},
			{V: value.Str(row.tick), Tags: tags, Sources: tag.NewSources(row.src)},
			{V: value.Int(row.qty), Tags: tags, Sources: tag.NewSources(row.src)},
			{V: value.Float(row.price), Tags: tags, Sources: tag.NewSources(row.src)},
		}})
	}
	return r
}

func stocksRel() *relation.Relation {
	r := relation.New(stocksSchema())
	for _, row := range []struct {
		sym  string
		last float64
	}{{"IBM", 99.25}, {"DEC", 21.75}, {"HP", 43.5}, {"SUN", 30.0}} {
		r.Tuples = append(r.Tuples, relation.Tuple{Cells: []relation.Cell{
			{V: value.Str(row.sym), Sources: tag.NewSources("exchange")},
			{V: value.Float(row.last), Sources: tag.NewSources("exchange")},
		}})
	}
	return r
}

func drain(t *testing.T, it Iterator) *relation.Relation {
	t.Helper()
	out, err := Collect(it)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return out
}

func TestSelect(t *testing.T) {
	pred := &Cmp{OpGt, &ColRef{Name: "qty"}, &Const{value.Int(60)}}
	it, err := NewSelect(NewRelationScan(tradesRel()), pred, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	if out.Len() != 3 {
		t.Fatalf("select kept %d rows", out.Len())
	}
	// Tags survive selection.
	for _, tup := range out.Tuples {
		if !tup.Cells[1].Tags.Has("source") {
			t.Error("selection dropped tags")
		}
	}
}

func TestSelectOverIndicator(t *testing.T) {
	pred := &Cmp{OpEq, &IndRef{Col: "qty", Indicator: "source"}, &Const{value.Str("feedA")}}
	it, err := NewSelect(NewRelationScan(tradesRel()), pred, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	if out.Len() != 2 {
		t.Fatalf("quality select kept %d rows, want 2", out.Len())
	}
}

func TestProjectPlainAndComputed(t *testing.T) {
	items := []ProjectItem{
		{Expr: &ColRef{Name: "ticker"}},
		{Expr: &Arith{OpMul, &ColRef{Name: "qty"}, &ColRef{Name: "price"}}, As: "notional"},
	}
	it, err := NewProject(NewRelationScan(tradesRel()), items, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	if out.Len() != 5 {
		t.Fatalf("project emitted %d rows", out.Len())
	}
	if out.Schema.Attrs[0].Name != "ticker" || out.Schema.Attrs[1].Name != "notional" {
		t.Fatalf("schema = %v", out.Schema)
	}
	first := out.Tuples[0]
	// Plain column keeps tags; computed cell keeps unanimous tags and
	// unions sources.
	if !first.Cells[0].Tags.Has("source") {
		t.Error("plain projection dropped tags")
	}
	if got := first.Cells[1].V.AsFloat(); got != 100*98.5 {
		t.Errorf("notional = %v", got)
	}
	if v, ok := first.Cells[1].Tags.Get("source"); !ok || v.AsString() != "feedA" {
		t.Error("derived cell should keep unanimous source tag")
	}
	if !first.Cells[1].Sources.Equal(tag.NewSources("feedA")) {
		t.Errorf("derived sources = %v", first.Cells[1].Sources)
	}
}

func TestProjectDefaultNames(t *testing.T) {
	items := []ProjectItem{{Expr: &Arith{OpAdd, &ColRef{Name: "qty"}, &Const{value.Int(1)}}}}
	it, err := NewProject(NewRelationScan(tradesRel()), items, ctx())
	if err != nil {
		t.Fatal(err)
	}
	if it.Schema().Attrs[0].Name != "col1" {
		t.Errorf("default name = %q", it.Schema().Attrs[0].Name)
	}
}

func TestRename(t *testing.T) {
	it, err := NewRename(NewRelationScan(tradesRel()), "t2", map[string]string{"acct": "account"})
	if err != nil {
		t.Fatal(err)
	}
	if it.Schema().Name != "t2" || it.Schema().ColIndex("account") != 0 {
		t.Fatalf("rename schema = %v", it.Schema())
	}
	if _, err := NewRename(NewRelationScan(tradesRel()), "", map[string]string{"zz": "y"}); err == nil {
		t.Error("rename of unknown column should fail")
	}
}

func TestNestedLoopJoin(t *testing.T) {
	pred := &Cmp{OpEq, &ColRef{Name: "ticker"}, &ColRef{Name: "symbol"}}
	it, err := NewNestedLoopJoin(NewRelationScan(tradesRel()), NewRelationScan(stocksRel()), pred, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	if out.Len() != 5 {
		t.Fatalf("join produced %d rows, want 5", out.Len())
	}
	// Joined cells keep their original provenance.
	for _, tup := range out.Tuples {
		if !tup.Cells[1].Tags.Has("source") {
			t.Error("left tags lost in join")
		}
		if !tup.Cells[5].Sources.Contains("exchange") {
			t.Error("right sources lost in join")
		}
	}
}

func TestCrossProduct(t *testing.T) {
	it, err := NewNestedLoopJoin(NewRelationScan(tradesRel()), NewRelationScan(stocksRel()), nil, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	if out.Len() != 5*4 {
		t.Fatalf("cross product = %d rows", out.Len())
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	hj, err := NewHashJoin(NewRelationScan(tradesRel()), NewRelationScan(stocksRel()),
		&ColRef{Name: "ticker"}, &ColRef{Name: "symbol"}, nil, ctx())
	if err != nil {
		t.Fatal(err)
	}
	hout := drain(t, hj)
	pred := &Cmp{OpEq, &ColRef{Name: "ticker"}, &ColRef{Name: "symbol"}}
	nj, err := NewNestedLoopJoin(NewRelationScan(tradesRel()), NewRelationScan(stocksRel()), pred, ctx())
	if err != nil {
		t.Fatal(err)
	}
	nout := drain(t, nj)
	if hout.Len() != nout.Len() {
		t.Fatalf("hash join %d rows, nested loop %d", hout.Len(), nout.Len())
	}
	// Same multiset of (ticker,last) pairs.
	count := map[string]int{}
	for _, tup := range hout.Tuples {
		count[tup.Cells[1].V.AsString()+"|"+tup.Cells[5].V.String()]++
	}
	for _, tup := range nout.Tuples {
		count[tup.Cells[1].V.AsString()+"|"+tup.Cells[5].V.String()]--
	}
	for k, c := range count {
		if c != 0 {
			t.Errorf("join result mismatch at %s: %d", k, c)
		}
	}
}

func TestHashJoinResidual(t *testing.T) {
	residual := &Cmp{OpGt, &ColRef{Name: "qty"}, &Const{value.Int(60)}}
	hj, err := NewHashJoin(NewRelationScan(tradesRel()), NewRelationScan(stocksRel()),
		&ColRef{Name: "ticker"}, &ColRef{Name: "symbol"}, residual, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, hj)
	if out.Len() != 3 {
		t.Fatalf("residual join = %d rows, want 3", out.Len())
	}
}

func TestJoinSchemaCollision(t *testing.T) {
	// Self-join: all columns collide and get prefixed.
	it, err := NewNestedLoopJoin(NewRelationScan(tradesRel()), NewRelationScan(tradesRel()), nil, ctx())
	if err != nil {
		t.Fatal(err)
	}
	s := it.Schema()
	if s.ColIndex("trade_acct") < 0 {
		t.Errorf("collision should qualify names, got %v", s.AttrNames())
	}
}

func TestUnionDistinctDifference(t *testing.T) {
	a, b := tradesRel(), tradesRel()
	u, err := NewUnion(NewRelationScan(a), NewRelationScan(b))
	if err != nil {
		t.Fatal(err)
	}
	uout := drain(t, u)
	if uout.Len() != 10 {
		t.Fatalf("union = %d rows", uout.Len())
	}
	u2, _ := NewUnion(NewRelationScan(a), NewRelationScan(b))
	dout := drain(t, NewDistinct(u2))
	if dout.Len() != 5 {
		t.Fatalf("distinct = %d rows", dout.Len())
	}
	diff, err := NewDifference(NewRelationScan(a), NewRelationScan(b))
	if err != nil {
		t.Fatal(err)
	}
	dd := drain(t, diff)
	if dd.Len() != 0 {
		t.Fatalf("a - a = %d rows", dd.Len())
	}
	// Bag difference keeps surplus duplicates.
	two := relation.New(tradesSchema())
	two.Tuples = append(two.Tuples, a.Tuples[0], a.Tuples[0], a.Tuples[1])
	one := relation.New(tradesSchema())
	one.Tuples = append(one.Tuples, a.Tuples[0])
	diff2, _ := NewDifference(NewRelationScan(two), NewRelationScan(one))
	if got := drain(t, diff2).Len(); got != 2 {
		t.Fatalf("bag difference = %d rows, want 2", got)
	}
	// Incompatible schemas.
	if _, err := NewUnion(NewRelationScan(a), NewRelationScan(stocksRel())); err == nil {
		t.Error("union of incompatible schemas should fail")
	}
}

func TestAggregateGlobal(t *testing.T) {
	aggs := []AggSpec{
		{Fn: AggCount},
		{Fn: AggSum, Arg: &ColRef{Name: "qty"}, As: "total_qty"},
		{Fn: AggAvg, Arg: &ColRef{Name: "price"}, As: "avg_price"},
		{Fn: AggMin, Arg: &ColRef{Name: "qty"}, As: "min_qty"},
		{Fn: AggMax, Arg: &ColRef{Name: "qty"}, As: "max_qty"},
	}
	it, err := NewAggregate(NewRelationScan(tradesRel()), nil, aggs, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	if out.Len() != 1 {
		t.Fatalf("global aggregate rows = %d", out.Len())
	}
	row := out.Tuples[0]
	if row.Cells[0].V.AsInt() != 5 {
		t.Errorf("count = %v", row.Cells[0].V)
	}
	if row.Cells[1].V.AsInt() != 435 {
		t.Errorf("sum qty = %v", row.Cells[1].V)
	}
	if got := row.Cells[2].V.AsFloat(); got != (98.5+22.0+99.0+44.0+21.5)/5 {
		t.Errorf("avg price = %v", got)
	}
	if row.Cells[3].V.AsInt() != 10 || row.Cells[4].V.AsInt() != 200 {
		t.Errorf("min/max = %v/%v", row.Cells[3].V, row.Cells[4].V)
	}
	// Aggregate provenance: sources union across all contributing cells.
	if !row.Cells[1].Sources.Equal(tag.NewSources("feedA", "feedB", "feedC")) {
		t.Errorf("aggregate sources = %v", row.Cells[1].Sources)
	}
	// Conflicting source tags across groups are dropped.
	if row.Cells[1].Tags.Has("source") {
		t.Error("conflicting tags should be dropped from aggregates")
	}
}

func TestAggregateGroupBy(t *testing.T) {
	aggs := []AggSpec{{Fn: AggSum, Arg: &ColRef{Name: "qty"}, As: "qty"}}
	it, err := NewAggregate(NewRelationScan(tradesRel()), []Expr{&ColRef{Name: "ticker"}}, aggs, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	if out.Len() != 3 {
		t.Fatalf("groups = %d", out.Len())
	}
	byTicker := map[string]int64{}
	for _, tup := range out.Tuples {
		byTicker[tup.Cells[0].V.AsString()] = tup.Cells[1].V.AsInt()
	}
	want := map[string]int64{"IBM": 300, "DEC": 60, "HP": 75}
	for k, v := range want {
		if byTicker[k] != v {
			t.Errorf("sum(%s) = %d, want %d", k, byTicker[k], v)
		}
	}
	// Per-group source tag is unanimous within group, so it survives.
	for _, tup := range out.Tuples {
		if !tup.Cells[1].Tags.Has("source") {
			t.Errorf("group %v lost unanimous source tag", tup.Cells[0].V)
		}
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	empty := relation.New(tradesSchema())
	it, err := NewAggregate(NewRelationScan(empty), nil, []AggSpec{{Fn: AggCount}, {Fn: AggSum, Arg: &ColRef{Name: "qty"}}}, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	if out.Len() != 1 {
		t.Fatalf("empty global aggregate rows = %d", out.Len())
	}
	if out.Tuples[0].Cells[0].V.AsInt() != 0 {
		t.Errorf("count over empty = %v", out.Tuples[0].Cells[0].V)
	}
	if !out.Tuples[0].Cells[1].V.IsNull() {
		t.Errorf("sum over empty should be null, got %v", out.Tuples[0].Cells[1].V)
	}
	// Grouped aggregate over empty input yields no rows.
	it2, _ := NewAggregate(NewRelationScan(relation.New(tradesSchema())), []Expr{&ColRef{Name: "ticker"}}, []AggSpec{{Fn: AggCount}}, ctx())
	if got := drain(t, it2).Len(); got != 0 {
		t.Errorf("grouped aggregate over empty = %d rows", got)
	}
}

func TestSortAndLimit(t *testing.T) {
	it, err := NewSort(NewRelationScan(tradesRel()),
		[]SortKey{{Expr: &ColRef{Name: "qty"}, Desc: true}}, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	prev := int64(1 << 40)
	for _, tup := range out.Tuples {
		q := tup.Cells[2].V.AsInt()
		if q > prev {
			t.Fatalf("not sorted desc: %d after %d", q, prev)
		}
		prev = q
	}
	it2, _ := NewSort(NewRelationScan(tradesRel()), []SortKey{{Expr: &ColRef{Name: "qty"}}}, ctx())
	lim := NewLimit(it2, 2, 1)
	lout := drain(t, lim)
	if lout.Len() != 2 {
		t.Fatalf("limit emitted %d", lout.Len())
	}
	if lout.Tuples[0].Cells[2].V.AsInt() != 50 {
		t.Errorf("offset skipped wrong row: %v", lout.Tuples[0])
	}
	// Unlimited.
	un := NewLimit(NewRelationScan(tradesRel()), -1, 0)
	if got := drain(t, un).Len(); got != 5 {
		t.Errorf("unlimited limit = %d", got)
	}
}

func TestIndexScan(t *testing.T) {
	tbl := storage.NewTable(tradesSchema(), false)
	if err := tbl.Load(tradesRel()); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex(storage.IndexTarget{Attr: "qty"}, storage.IndexBTree); err != nil {
		t.Fatal(err)
	}
	it, err := NewIndexScan(tbl, storage.IndexTarget{Attr: "qty"},
		storage.Incl(value.Int(50)), storage.Incl(value.Int(100)))
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, it)
	if out.Len() != 3 {
		t.Fatalf("index scan = %d rows", out.Len())
	}
	// Indicator index scan.
	if err := tbl.CreateIndex(storage.IndexTarget{Attr: "qty", Indicator: "source"}, storage.IndexHash); err != nil {
		t.Fatal(err)
	}
	ids, err := tbl.LookupEq(storage.IndexTarget{Attr: "qty", Indicator: "source"}, value.Str("feedB"))
	if err != nil || len(ids) != 2 {
		t.Fatalf("indicator lookup = %v, %v", ids, err)
	}
}

func TestSelectionSplittingLaw(t *testing.T) {
	// sigma(p AND q) == sigma(p) then sigma(q).
	p := &Cmp{OpGt, &ColRef{Name: "qty"}, &Const{value.Int(20)}}
	q := &Cmp{OpEq, &IndRef{Col: "qty", Indicator: "source"}, &Const{value.Str("feedA")}}
	both := &Logic{OpAnd, p, q}
	s1, err := NewSelect(NewRelationScan(tradesRel()), both, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out1 := drain(t, s1)

	p2 := &Cmp{OpGt, &ColRef{Name: "qty"}, &Const{value.Int(20)}}
	q2 := &Cmp{OpEq, &IndRef{Col: "qty", Indicator: "source"}, &Const{value.Str("feedA")}}
	sp, err := NewSelect(NewRelationScan(tradesRel()), p2, ctx())
	if err != nil {
		t.Fatal(err)
	}
	sq, err := NewSelect(sp, q2, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out2 := drain(t, sq)
	if out1.Len() != out2.Len() {
		t.Fatalf("selection splitting broken: %d vs %d", out1.Len(), out2.Len())
	}
	for i := range out1.Tuples {
		if !out1.Tuples[i].Equal(out2.Tuples[i]) {
			t.Fatalf("selection splitting row %d differs", i)
		}
	}
}

func TestProjectionIdempotent(t *testing.T) {
	items := []ProjectItem{{Expr: &ColRef{Name: "ticker"}}, {Expr: &ColRef{Name: "qty"}}}
	p1, err := NewProject(NewRelationScan(tradesRel()), items, ctx())
	if err != nil {
		t.Fatal(err)
	}
	items2 := []ProjectItem{{Expr: &ColRef{Name: "ticker"}}, {Expr: &ColRef{Name: "qty"}}}
	p2, err := NewProject(p1, items2, ctx())
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, p2)
	if out.Len() != 5 || len(out.Schema.Attrs) != 2 {
		t.Fatalf("double projection = %d rows x %d cols", out.Len(), len(out.Schema.Attrs))
	}
}
