package algebra

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

// Iterator is the pull-based tuple stream every operator implements.
type Iterator interface {
	// Schema describes the stream's tuples.
	Schema() *schema.Schema
	// Next returns the next tuple, or ok=false at end of stream.
	Next() (relation.Tuple, bool, error)
}

// Sizer is implemented by iterators that can bound their cardinality up
// front: SizeHint returns an upper bound on the rows the stream will yield,
// or -1 when unknown. Consumers use it to pre-size result buffers; it is a
// hint, never a contract.
type Sizer interface{ SizeHint() int }

// sizeHint reports it's SizeHint when it implements Sizer, else -1.
func sizeHint(it any) int {
	if s, ok := it.(Sizer); ok {
		return s.SizeHint()
	}
	return -1
}

// Collect drains an iterator into a relation, pre-sizing the tuple slice
// when the iterator can bound its cardinality (Sizer).
func Collect(it Iterator) (*relation.Relation, error) {
	out := relation.New(it.Schema())
	if hint := sizeHint(it); hint > 0 {
		out.Tuples = make([]relation.Tuple, 0, hint)
	}
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Tuples = append(out.Tuples, t)
	}
}

// ---- Scans ----

type relScan struct {
	rel *relation.Relation
	pos int
}

// NewRelationScan streams an in-memory relation.
func NewRelationScan(r *relation.Relation) Iterator { return &relScan{rel: r} }

func (s *relScan) Schema() *schema.Schema { return s.rel.Schema }

func (s *relScan) SizeHint() int { return len(s.rel.Tuples) }

func (s *relScan) Next() (relation.Tuple, bool, error) {
	if s.pos >= len(s.rel.Tuples) {
		return relation.Tuple{}, false, nil
	}
	t := s.rel.Tuples[s.pos]
	s.pos++
	return t, true, nil
}

type emptyScan struct{ s *schema.Schema }

// NewEmptyScan is a scan of zero tuples over the given schema. The planner
// substitutes it for any access path whose simplified predicate can never
// be true, so the rest of the pipeline (projection, aggregation — a global
// COUNT over it still yields one row of 0) runs unchanged over no input.
func NewEmptyScan(s *schema.Schema) Iterator { return &emptyScan{s: s} }

func (e *emptyScan) Schema() *schema.Schema              { return e.s }
func (e *emptyScan) SizeHint() int                       { return 0 }
func (e *emptyScan) Next() (relation.Tuple, bool, error) { return relation.Tuple{}, false, nil }

// ---- Select ----

type selectOp struct {
	in   Iterator
	pred Expr
	ctx  *EvalContext
}

// NewSelect keeps the tuples whose predicate is definitely true. The
// predicate must already be bound against in.Schema() (Bind is invoked
// defensively).
func NewSelect(in Iterator, pred Expr, ctx *EvalContext) (Iterator, error) {
	if err := pred.Bind(in.Schema()); err != nil {
		return nil, err
	}
	return &selectOp{in: in, pred: pred, ctx: ctx}, nil
}

func (s *selectOp) Schema() *schema.Schema { return s.in.Schema() }

func (s *selectOp) Next() (relation.Tuple, bool, error) {
	for {
		t, ok, err := s.in.Next()
		if err != nil || !ok {
			return relation.Tuple{}, false, err
		}
		keep, err := Truth(s.pred, t, s.ctx)
		if err != nil {
			return relation.Tuple{}, false, err
		}
		if keep {
			return t, true, nil
		}
	}
}

// ---- Project ----

// ProjectItem is one output column of a projection: an expression and its
// output name. Plain column references keep their cell tags and sources;
// computed expressions produce derived cells per the package rules.
type ProjectItem struct {
	Expr Expr
	As   string
}

type projectOp struct {
	in   Iterator
	proj *projection
	ctx  *EvalContext
}

// projection is the bound core of a projection, shared by the scalar and
// batch operators: per-item either a plain column copy (col >= 0) or an
// evaluator with its contributing columns precomputed (walking the
// expression per row to find them would dominate the per-row cost).
type projection struct {
	items []ProjectItem
	cols  []int // bound ColRef index for plain copies, -1 for computed
	evals []Compiled
	refs  [][]int // ReferencedCols per computed item
	out   *schema.Schema
}

// bindProjection binds the items against the input schema, fills default
// output names, and derives the output schema. Output attribute kinds are
// inferred from the input schema for plain column references and left as
// KindNull (wildcard) for computed expressions. compile selects compiled
// closures or the interpreted evaluators for computed items.
func bindProjection(inSchema *schema.Schema, items []ProjectItem, compile bool) (*projection, error) {
	p := &projection{
		items: items,
		cols:  make([]int, len(items)),
		evals: make([]Compiled, len(items)),
		refs:  make([][]int, len(items)),
	}
	attrs := make([]schema.Attr, len(items))
	for i, it := range items {
		if err := it.Expr.Bind(inSchema); err != nil {
			return nil, err
		}
		name := it.As
		if name == "" {
			if cr, ok := it.Expr.(*ColRef); ok {
				name = cr.Name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
			items[i].As = name
		}
		if cr, ok := it.Expr.(*ColRef); ok {
			src, _ := inSchema.Attr(cr.Name)
			attrs[i] = schema.Attr{Name: name, Kind: src.Kind, Indicators: src.Indicators, Doc: src.Doc}
			p.cols[i] = cr.idx
			continue
		}
		attrs[i] = schema.Attr{Name: name, Kind: value.KindNull}
		p.cols[i] = -1
		if compile {
			p.evals[i] = Compile(it.Expr)
		} else {
			p.evals[i] = it.Expr.Eval
		}
		p.refs[i] = ReferencedCols(it.Expr)
	}
	out, err := schema.New(inSchema.Name, attrs)
	if err != nil {
		return nil, err
	}
	p.out = out
	return p, nil
}

// row projects one input tuple into a fresh cell slice.
func (p *projection) row(t relation.Tuple, ctx *EvalContext) (relation.Tuple, error) {
	cells := make([]relation.Cell, len(p.items))
	for i := range p.items {
		if col := p.cols[i]; col >= 0 {
			cells[i] = t.Cells[col]
			continue
		}
		v, err := p.evals[i](t, ctx)
		if err != nil {
			return relation.Tuple{}, err
		}
		cells[i] = deriveCell(v, t, p.refs[i])
	}
	return relation.Tuple{Cells: cells}, nil
}

// NewProject builds a projection. Output attribute kinds are inferred from
// the input schema for plain column references and left as KindNull
// (wildcard) for computed expressions.
func NewProject(in Iterator, items []ProjectItem, ctx *EvalContext) (Iterator, error) {
	proj, err := bindProjection(in.Schema(), items, false)
	if err != nil {
		return nil, err
	}
	return &projectOp{in: in, proj: proj, ctx: ctx}, nil
}

func (p *projectOp) Schema() *schema.Schema { return p.proj.out }

func (p *projectOp) SizeHint() int { return sizeHint(p.in) }

func (p *projectOp) Next() (relation.Tuple, bool, error) {
	t, ok, err := p.in.Next()
	if err != nil || !ok {
		return relation.Tuple{}, false, err
	}
	out, err := p.proj.row(t, p.ctx)
	if err != nil {
		return relation.Tuple{}, false, err
	}
	return out, true, nil
}

// deriveCell builds a derived cell from the contributing input cells: tags
// are folded with Intersect (only tags unanimous across every contributing
// cell survive) and source sets are unioned (the polygen rule).
func deriveCell(v value.Value, t relation.Tuple, cols []int) relation.Cell {
	out := relation.Cell{V: v}
	for i, c := range cols {
		cell := t.Cells[c]
		if i == 0 {
			out.Tags = cell.Tags
			out.Sources = cell.Sources
		} else {
			out.Tags = tag.Intersect(out.Tags, cell.Tags)
			out.Sources = out.Sources.Union(cell.Sources)
		}
	}
	return out
}

// ---- Rename ----

type renameOp struct {
	in  Iterator
	out *schema.Schema
}

// NewRename renames the stream's relation and/or columns. Empty relName
// keeps the old relation name; cols maps old to new column names and may be
// partial.
func NewRename(in Iterator, relName string, cols map[string]string) (Iterator, error) {
	s := in.Schema().Clone()
	if relName != "" {
		s.Name = relName
	}
	for old, renamed := range cols {
		i := s.ColIndex(old)
		if i < 0 {
			return nil, fmt.Errorf("algebra: rename of unknown column %q", old)
		}
		s.Attrs[i].Name = renamed
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &renameOp{in: in, out: s}, nil
}

func (r *renameOp) Schema() *schema.Schema              { return r.out }
func (r *renameOp) SizeHint() int                       { return sizeHint(r.in) }
func (r *renameOp) Next() (relation.Tuple, bool, error) { return r.in.Next() }

// ---- Joins ----

// JoinSchema concatenates two schemas the way the join operators do,
// qualifying colliding column names with the source relation name
// ("rel_col"). Planners use it to compute a join's output schema without
// instantiating the join: NewHashJoin and NewNestedLoopJoin produce exactly
// this schema for the same inputs.
func JoinSchema(l, r *schema.Schema) (*schema.Schema, error) {
	return joinSchema(l, r)
}

// joinSchema concatenates two schemas, qualifying colliding column names
// with the source relation name ("rel_col").
func joinSchema(l, r *schema.Schema) (*schema.Schema, error) {
	seen := map[string]bool{}
	for _, a := range l.Attrs {
		seen[a.Name] = true
	}
	attrs := append([]schema.Attr(nil), l.Attrs...)
	for _, a := range r.Attrs {
		name := a.Name
		if seen[name] {
			name = r.Name + "_" + a.Name
			if seen[name] {
				return nil, fmt.Errorf("algebra: cannot disambiguate column %q in join", a.Name)
			}
		}
		seen[name] = true
		na := a
		na.Name = name
		attrs = append(attrs, na)
	}
	return schema.New(l.Name+"_"+r.Name, attrs)
}

type nestedLoopJoin struct {
	left  Iterator
	right []relation.Tuple
	pred  Expr
	ctx   *EvalContext
	out   *schema.Schema

	cur    relation.Tuple
	curOK  bool
	rIndex int
}

// NewNestedLoopJoin materializes the right input and joins with an arbitrary
// predicate; pass pred == nil for a cross product.
func NewNestedLoopJoin(left, right Iterator, pred Expr, ctx *EvalContext) (Iterator, error) {
	out, err := joinSchema(left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	rrel, err := Collect(right)
	if err != nil {
		return nil, err
	}
	if pred != nil {
		if err := pred.Bind(out); err != nil {
			return nil, err
		}
	}
	return &nestedLoopJoin{left: left, right: rrel.Tuples, pred: pred, ctx: ctx, out: out}, nil
}

func (j *nestedLoopJoin) Schema() *schema.Schema { return j.out }

func (j *nestedLoopJoin) Next() (relation.Tuple, bool, error) {
	for {
		if !j.curOK {
			t, ok, err := j.left.Next()
			if err != nil || !ok {
				return relation.Tuple{}, false, err
			}
			j.cur, j.curOK, j.rIndex = t, true, 0
		}
		for j.rIndex < len(j.right) {
			rt := j.right[j.rIndex]
			j.rIndex++
			joined := relation.Tuple{Cells: append(append([]relation.Cell(nil), j.cur.Cells...), rt.Cells...)}
			if j.pred == nil {
				return joined, true, nil
			}
			keep, err := Truth(j.pred, joined, j.ctx)
			if err != nil {
				return relation.Tuple{}, false, err
			}
			if keep {
				return joined, true, nil
			}
		}
		j.curOK = false
	}
}

type hashJoin struct {
	left     Iterator
	build    map[uint64][]relation.Tuple
	leftKey  Expr
	rightKey Expr
	residual Expr
	ctx      *EvalContext
	out      *schema.Schema

	cur     relation.Tuple
	curOK   bool
	matches []relation.Tuple
	mIndex  int
}

// NewHashJoin is an equi-join on leftKey = rightKey, with an optional
// residual predicate evaluated over the concatenated tuple. The right input
// is materialized into the build table.
func NewHashJoin(left, right Iterator, leftKey, rightKey Expr, residual Expr, ctx *EvalContext) (Iterator, error) {
	out, err := joinSchema(left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	if err := leftKey.Bind(left.Schema()); err != nil {
		return nil, err
	}
	if err := rightKey.Bind(right.Schema()); err != nil {
		return nil, err
	}
	if residual != nil {
		if err := residual.Bind(out); err != nil {
			return nil, err
		}
	}
	build := make(map[uint64][]relation.Tuple)
	for {
		t, ok, err := right.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		k, err := rightKey.Eval(t, ctx)
		if err != nil {
			return nil, err
		}
		if k.IsNull() {
			continue // null keys never join
		}
		h := k.Hash()
		build[h] = append(build[h], t)
	}
	return &hashJoin{left: left, build: build, leftKey: leftKey, rightKey: rightKey,
		residual: residual, ctx: ctx, out: out}, nil
}

func (j *hashJoin) Schema() *schema.Schema { return j.out }

func (j *hashJoin) Next() (relation.Tuple, bool, error) {
	for {
		for j.mIndex < len(j.matches) {
			rt := j.matches[j.mIndex]
			j.mIndex++
			// Confirm the hash match with a real comparison.
			lk, err := j.leftKey.Eval(j.cur, j.ctx)
			if err != nil {
				return relation.Tuple{}, false, err
			}
			rk, err := j.rightKey.Eval(rt, j.ctx)
			if err != nil {
				return relation.Tuple{}, false, err
			}
			if !value.EqualPtr(&lk, &rk) {
				continue
			}
			joined := relation.Tuple{Cells: append(append([]relation.Cell(nil), j.cur.Cells...), rt.Cells...)}
			if j.residual != nil {
				keep, err := Truth(j.residual, joined, j.ctx)
				if err != nil {
					return relation.Tuple{}, false, err
				}
				if !keep {
					continue
				}
			}
			return joined, true, nil
		}
		t, ok, err := j.left.Next()
		if err != nil || !ok {
			return relation.Tuple{}, false, err
		}
		j.cur, j.curOK = t, true
		k, err := j.leftKey.Eval(t, j.ctx)
		if err != nil {
			return relation.Tuple{}, false, err
		}
		if k.IsNull() {
			j.matches, j.mIndex = nil, 0
			continue
		}
		j.matches, j.mIndex = j.build[k.Hash()], 0
	}
}

// ---- Union / Difference / Distinct ----

func compatible(a, b *schema.Schema) error {
	if len(a.Attrs) != len(b.Attrs) {
		return fmt.Errorf("algebra: union-incompatible arities %d vs %d", len(a.Attrs), len(b.Attrs))
	}
	for i := range a.Attrs {
		ka, kb := a.Attrs[i].Kind, b.Attrs[i].Kind
		if ka != kb && ka != value.KindNull && kb != value.KindNull {
			return fmt.Errorf("algebra: union-incompatible kinds at column %d: %v vs %v", i, ka, kb)
		}
	}
	return nil
}

type unionOp struct {
	a, b  Iterator
	first bool
}

// NewUnion concatenates two union-compatible streams (bag semantics; wrap in
// NewDistinct for set semantics). The output schema is the left schema.
func NewUnion(a, b Iterator) (Iterator, error) {
	if err := compatible(a.Schema(), b.Schema()); err != nil {
		return nil, err
	}
	return &unionOp{a: a, b: b, first: true}, nil
}

func (u *unionOp) Schema() *schema.Schema { return u.a.Schema() }

func (u *unionOp) Next() (relation.Tuple, bool, error) {
	if u.first {
		t, ok, err := u.a.Next()
		if err != nil {
			return relation.Tuple{}, false, err
		}
		if ok {
			return t, true, nil
		}
		u.first = false
	}
	return u.b.Next()
}

// encodeValues produces a comparable key of the tuple's application values.
// Tags and sources deliberately do not participate: two tuples with the same
// data but different provenance are duplicates under set semantics (the
// attribute-based model resolves which provenance wins via merge policy).
func encodeValues(t relation.Tuple) string {
	var b strings.Builder
	for i, c := range t.Cells {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(c.V.Literal())
	}
	return b.String()
}

type distinctOp struct {
	in   Iterator
	seen map[string]bool
}

// NewDistinct removes duplicate tuples by application values; the first
// occurrence's tags and sources are kept.
func NewDistinct(in Iterator) Iterator {
	return &distinctOp{in: in, seen: make(map[string]bool)}
}

func (d *distinctOp) Schema() *schema.Schema { return d.in.Schema() }

func (d *distinctOp) Next() (relation.Tuple, bool, error) {
	for {
		t, ok, err := d.in.Next()
		if err != nil || !ok {
			return relation.Tuple{}, false, err
		}
		k := encodeValues(t)
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return t, true, nil
	}
}

type diffOp struct {
	in    Iterator
	minus map[string]int
	init  bool
	sub   Iterator
}

// NewDifference computes bag difference a − b by application values.
func NewDifference(a, b Iterator) (Iterator, error) {
	if err := compatible(a.Schema(), b.Schema()); err != nil {
		return nil, err
	}
	return &diffOp{in: a, sub: b}, nil
}

func (d *diffOp) Schema() *schema.Schema { return d.in.Schema() }

func (d *diffOp) Next() (relation.Tuple, bool, error) {
	if !d.init {
		d.minus = make(map[string]int)
		for {
			t, ok, err := d.sub.Next()
			if err != nil {
				return relation.Tuple{}, false, err
			}
			if !ok {
				break
			}
			d.minus[encodeValues(t)]++
		}
		d.init = true
	}
	for {
		t, ok, err := d.in.Next()
		if err != nil || !ok {
			return relation.Tuple{}, false, err
		}
		k := encodeValues(t)
		if d.minus[k] > 0 {
			d.minus[k]--
			continue
		}
		return t, true, nil
	}
}

// ---- Aggregation ----

// AggFunc enumerates the aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = [...]string{"COUNT", "SUM", "AVG", "MIN", "MAX"}

// AggSpec is one aggregate output: Fn over Arg (nil Arg means COUNT(*)).
type AggSpec struct {
	Fn  AggFunc
	Arg Expr
	As  string
}

type aggState struct {
	count    int64
	sum      float64
	sumI     int64
	isInt    bool
	min      value.Value
	max      value.Value
	cell     relation.Cell
	seenCell bool
}

// newAggStates returns zeroed accumulator states for n aggregates.
func newAggStates(n int) []aggState {
	states := make([]aggState, n)
	for i := range states {
		states[i].isInt = true
		states[i].min = value.Null
		states[i].max = value.Null
	}
	return states
}

// foldRow folds one input row into the state for aggregate a. v is the
// evaluated argument (ignored when a.Arg == nil) and refs its contributing
// columns, precomputed once per aggregate. Provenance folds across every
// row — null arguments included — exactly like derived cells elsewhere:
// tags intersect, sources union.
func (st *aggState) foldRow(a *AggSpec, v value.Value, refs []int, t relation.Tuple) {
	if len(refs) > 0 {
		dc := deriveCell(value.Null, t, refs)
		if !st.seenCell {
			st.cell = dc
			st.seenCell = true
		} else {
			st.cell.Tags = tag.Intersect(st.cell.Tags, dc.Tags)
			st.cell.Sources = st.cell.Sources.Union(dc.Sources)
		}
	}
	if a.Arg == nil {
		st.count++
		return
	}
	if v.IsNull() {
		return
	}
	st.count++
	if v.Kind() != value.KindInt {
		st.isInt = false
	}
	if v.Numeric() {
		st.sum += v.AsFloat()
		st.sumI += v.AsInt()
	}
	if st.min.IsNull() || value.Less(v, st.min) {
		st.min = v
	}
	if st.max.IsNull() || value.Less(st.max, v) {
		st.max = v
	}
}

// finish computes the aggregate's output value from the folded state.
func (st *aggState) finish(fn AggFunc) value.Value {
	switch fn {
	case AggCount:
		return value.Int(st.count)
	case AggSum:
		if st.count == 0 {
			return value.Null
		}
		if st.isInt {
			return value.Int(st.sumI)
		}
		return value.Float(st.sum)
	case AggAvg:
		if st.count == 0 {
			return value.Null
		}
		return value.Float(st.sum / float64(st.count))
	case AggMin:
		return st.min
	case AggMax:
		return st.max
	default:
		panic(fmt.Sprintf("algebra: unknown aggregate %v", fn))
	}
}

// bindAggSpecs binds aggregate arguments against the input schema and fills
// default output names; shared by the scalar and batch aggregates so both
// produce identical output columns.
func bindAggSpecs(inS *schema.Schema, aggs []AggSpec) error {
	for i := range aggs {
		if aggs[i].Arg != nil {
			if err := aggs[i].Arg.Bind(inS); err != nil {
				return err
			}
		}
		if aggs[i].As == "" {
			if aggs[i].Arg != nil {
				aggs[i].As = strings.ToLower(aggNames[aggs[i].Fn]) + "_" + aggs[i].Arg.String()
			} else {
				aggs[i].As = "count"
			}
		}
	}
	return nil
}

// aggOutputSchema derives an aggregation's output schema — group key
// columns (named by their expression strings unless the key is a plain
// column) followed by the aggregate columns — shared by the scalar and
// batch aggregates so both produce identical output relations. groupBy and
// aggs must already be bound.
func aggOutputSchema(inS *schema.Schema, groupBy []Expr, aggs []AggSpec) (*schema.Schema, error) {
	attrs := make([]schema.Attr, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		name := g.String()
		kind := value.KindNull
		if cr, ok := g.(*ColRef); ok {
			name = cr.Name
			if a, ok := inS.Attr(cr.Name); ok {
				kind = a.Kind
			}
		} else if strings.ContainsAny(name, " @.()'") {
			name = fmt.Sprintf("group%d", i+1)
		}
		attrs = append(attrs, schema.Attr{Name: name, Kind: kind})
	}
	for _, a := range aggs {
		attrs = append(attrs, schema.Attr{Name: a.As, Kind: value.KindNull})
	}
	return schema.New(inS.Name+"_agg", attrs)
}

type aggregateOp struct {
	out  *schema.Schema
	rows []relation.Tuple
	pos  int
}

// NewAggregate groups the input by the groupBy expressions and computes the
// aggregates per group. With no groupBy it emits a single global row. Output
// columns are the group keys (named by their expression strings unless the
// key is a plain column) followed by the aggregates. Aggregate result cells
// carry MergeDrop-folded tags and unioned sources from their inputs.
func NewAggregate(in Iterator, groupBy []Expr, aggs []AggSpec, ctx *EvalContext) (Iterator, error) {
	inS := in.Schema()
	for _, g := range groupBy {
		if err := g.Bind(inS); err != nil {
			return nil, err
		}
	}
	if err := bindAggSpecs(inS, aggs); err != nil {
		return nil, err
	}
	outS, err := aggOutputSchema(inS, groupBy, aggs)
	if err != nil {
		return nil, err
	}

	type group struct {
		keyCells []relation.Cell
		states   []aggState
	}
	groups := make(map[string]*group)
	var order []string

	// Contributing columns per aggregate and group key, computed once: the
	// expression walk is per plan, not per row.
	argRefs := make([][]int, len(aggs))
	for i, a := range aggs {
		if a.Arg != nil {
			argRefs[i] = ReferencedCols(a.Arg)
		}
	}
	keyRefs := make([][]int, len(groupBy))
	for i, g := range groupBy {
		if _, ok := g.(*ColRef); !ok {
			keyRefs[i] = ReferencedCols(g)
		}
	}

	for {
		t, ok, err := in.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		keyCells := make([]relation.Cell, len(groupBy))
		var kb strings.Builder
		for i, g := range groupBy {
			v, err := g.Eval(t, ctx)
			if err != nil {
				return nil, err
			}
			if cr, ok := g.(*ColRef); ok {
				keyCells[i] = t.Cells[cr.idx]
			} else {
				keyCells[i] = deriveCell(v, t, keyRefs[i])
			}
			if i > 0 {
				kb.WriteByte(0)
			}
			kb.WriteString(v.Literal())
		}
		k := kb.String()
		gr, ok := groups[k]
		if !ok {
			gr = &group{keyCells: keyCells, states: newAggStates(len(aggs))}
			groups[k] = gr
			order = append(order, k)
		}
		for i := range aggs {
			var v value.Value
			if aggs[i].Arg != nil {
				var err error
				v, err = aggs[i].Arg.Eval(t, ctx)
				if err != nil {
					return nil, err
				}
			}
			gr.states[i].foldRow(&aggs[i], v, argRefs[i], t)
		}
	}
	if len(groupBy) == 0 && len(order) == 0 {
		// Global aggregate over an empty input still yields one row.
		groups[""] = &group{states: newAggStates(len(aggs))}
		order = append(order, "")
	}
	sort.Strings(order)
	rows := make([]relation.Tuple, 0, len(order))
	for _, k := range order {
		gr := groups[k]
		cells := append([]relation.Cell(nil), gr.keyCells...)
		for i, a := range aggs {
			c := gr.states[i].cell
			c.V = gr.states[i].finish(a.Fn)
			cells = append(cells, c)
		}
		rows = append(rows, relation.Tuple{Cells: cells})
	}
	return &aggregateOp{out: outS, rows: rows}, nil
}

func (a *aggregateOp) Schema() *schema.Schema { return a.out }

func (a *aggregateOp) SizeHint() int { return len(a.rows) }

func (a *aggregateOp) Next() (relation.Tuple, bool, error) {
	if a.pos >= len(a.rows) {
		return relation.Tuple{}, false, nil
	}
	t := a.rows[a.pos]
	a.pos++
	return t, true, nil
}

// ---- Sort / Limit ----

// SortKey orders by an expression, descending when Desc.
type SortKey struct {
	Expr Expr
	Desc bool
}

type sortOp struct {
	in   Iterator
	keys []SortKey
	ctx  *EvalContext
	rows []relation.Tuple
	init bool
	pos  int
	err  error
}

// NewSort materializes and orders the input (stable).
func NewSort(in Iterator, keys []SortKey, ctx *EvalContext) (Iterator, error) {
	for _, k := range keys {
		if err := k.Expr.Bind(in.Schema()); err != nil {
			return nil, err
		}
	}
	return &sortOp{in: in, keys: keys, ctx: ctx}, nil
}

func (s *sortOp) Schema() *schema.Schema { return s.in.Schema() }

func (s *sortOp) SizeHint() int { return sizeHint(s.in) }

func (s *sortOp) Next() (relation.Tuple, bool, error) {
	if !s.init {
		s.init = true
		rel, err := Collect(s.in)
		if err != nil {
			return relation.Tuple{}, false, err
		}
		s.rows = rel.Tuples
		keyVals := make([][]value.Value, len(s.rows))
		for i, t := range s.rows {
			keyVals[i] = make([]value.Value, len(s.keys))
			for j, k := range s.keys {
				v, err := k.Expr.Eval(t, s.ctx)
				if err != nil {
					return relation.Tuple{}, false, err
				}
				keyVals[i][j] = v
			}
		}
		idx := make([]int, len(s.rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for j, k := range s.keys {
				c := value.ComparePtr(&keyVals[idx[a]][j], &keyVals[idx[b]][j])
				if k.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		sorted := make([]relation.Tuple, len(s.rows))
		for i, j := range idx {
			sorted[i] = s.rows[j]
		}
		s.rows = sorted
	}
	if s.pos >= len(s.rows) {
		return relation.Tuple{}, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

type limitOp struct {
	in            Iterator
	limit, offset int
	emitted       int
	skipped       int
}

// NewLimit emits at most limit tuples after skipping offset. A negative
// limit means unlimited.
func NewLimit(in Iterator, limit, offset int) Iterator {
	return &limitOp{in: in, limit: limit, offset: offset}
}

func (l *limitOp) Schema() *schema.Schema { return l.in.Schema() }

func (l *limitOp) SizeHint() int {
	hint := sizeHint(l.in)
	if l.limit >= 0 && (hint < 0 || l.limit < hint) {
		return l.limit
	}
	return hint
}

func (l *limitOp) Next() (relation.Tuple, bool, error) {
	for l.skipped < l.offset {
		_, ok, err := l.in.Next()
		if err != nil || !ok {
			return relation.Tuple{}, false, err
		}
		l.skipped++
	}
	if l.limit >= 0 && l.emitted >= l.limit {
		return relation.Tuple{}, false, nil
	}
	t, ok, err := l.in.Next()
	if err != nil || !ok {
		return relation.Tuple{}, false, err
	}
	l.emitted++
	return t, true, nil
}
