package algebra

import "fmt"

// CloneExpr returns a deep copy of the expression tree. Clones share no
// mutable state with the original, so a pristine tree can be cached and
// handed to concurrent planners: Bind and the planner's name rewriting
// mutate nodes in place, and must only ever touch a private copy.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch v := e.(type) {
	case *Const:
		c := *v
		return &c
	case *ColRef:
		c := *v
		return &c
	case *IndRef:
		c := *v
		return &c
	case *MetaRef:
		c := *v
		return &c
	case *SrcContains:
		c := *v
		return &c
	case *Cmp:
		return &Cmp{Op: v.Op, L: CloneExpr(v.L), R: CloneExpr(v.R)}
	case *Logic:
		return &Logic{Op: v.Op, L: CloneExpr(v.L), R: CloneExpr(v.R)}
	case *Not:
		return &Not{E: CloneExpr(v.E)}
	case *Arith:
		return &Arith{Op: v.Op, L: CloneExpr(v.L), R: CloneExpr(v.R)}
	case *Neg:
		return &Neg{E: CloneExpr(v.E)}
	case *IsNull:
		return &IsNull{E: CloneExpr(v.E), Negate: v.Negate}
	case *InList:
		list := make([]Expr, len(v.List))
		for i, x := range v.List {
			list[i] = CloneExpr(x)
		}
		return &InList{E: CloneExpr(v.E), List: list, Negate: v.Negate}
	case *Like:
		return &Like{E: CloneExpr(v.E), Pattern: v.Pattern, Negate: v.Negate}
	case *Call:
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = CloneExpr(a)
		}
		return &Call{Name: v.Name, Args: args}
	}
	panic(fmt.Sprintf("algebra: CloneExpr: unhandled node %T", e))
}
