package algebra

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// batchSizes exercises the degenerate, tiny and default batch shapes.
var batchSizes = []int{1, 3, DefaultBatchSize}

func batchPred() Expr {
	return &Logic{Op: OpOr,
		L: &Cmp{Op: OpGt, L: &ColRef{Name: "qty"}, R: &Const{V: value.Int(500)}},
		R: &Cmp{Op: OpEq, L: &IndRef{Col: "grp", Indicator: "source"}, R: &Const{V: value.Str("a")}},
	}
}

// TestBatchScanMatchesSerial: the batch scan (via FromBatch) yields the
// same rows as the serial scan, for every batch size, without cloning.
func TestBatchScanMatchesSerial(t *testing.T) {
	tbl := bigTable(t, 2*storage.SegmentSize+57)
	want := drain(t, NewTableScan(tbl))
	for _, size := range batchSizes {
		before := settleClones(t)
		got := drain(t, NewFromBatch(NewBatchTableScan(tbl, size), size))
		if d := storage.TupleClones() - before; d != 0 {
			t.Fatalf("batch=%d: scan cloned %d tuples, want 0", size, d)
		}
		sameRelation(t, want, got, fmt.Sprintf("batch scan size %d", size))
	}
}

// TestBatchPipelineMatchesScalar runs scan → select → select → project →
// limit through both tiers (compiled and interpreted) and requires
// byte-identical output.
func TestBatchPipelineMatchesScalar(t *testing.T) {
	tbl := bigTable(t, storage.SegmentSize+700)
	second := &Cmp{Op: OpLt, L: &ColRef{Name: "qty"}, R: &Const{V: value.Int(900)}}
	items := []ProjectItem{
		{Expr: &ColRef{Name: "id"}},
		{Expr: &Arith{Op: OpMul, L: &ColRef{Name: "qty"}, R: &Const{V: value.Int(2)}}, As: "qty2"},
	}

	scalar := func() Iterator {
		it, err := NewSelect(NewTableScan(tbl), batchPred(), ctx())
		if err != nil {
			t.Fatal(err)
		}
		it, err = NewSelect(it, CloneExpr(second), ctx())
		if err != nil {
			t.Fatal(err)
		}
		it, err = NewProject(it, []ProjectItem{
			{Expr: CloneExpr(items[0].Expr), As: items[0].As},
			{Expr: CloneExpr(items[1].Expr), As: items[1].As},
		}, ctx())
		if err != nil {
			t.Fatal(err)
		}
		return NewLimit(it, 40, 7)
	}
	want := drain(t, scalar())

	for _, size := range batchSizes {
		for _, compiled := range []bool{true, false} {
			bit, err := NewBatchSelect(NewBatchTableScan(tbl, size), batchPred(), ctx(), compiled)
			if err != nil {
				t.Fatal(err)
			}
			bit, err = NewBatchSelect(bit, CloneExpr(second), ctx(), compiled)
			if err != nil {
				t.Fatal(err)
			}
			bit, err = NewBatchProject(bit, []ProjectItem{
				{Expr: CloneExpr(items[0].Expr), As: items[0].As},
				{Expr: CloneExpr(items[1].Expr), As: items[1].As},
			}, ctx(), size, compiled)
			if err != nil {
				t.Fatal(err)
			}
			bit = NewBatchLimit(bit, 40, 7)
			got := drain(t, NewFromBatch(bit, size))
			sameRelation(t, want, got, fmt.Sprintf("batch pipeline size %d compiled %v", size, compiled))
			if want.Schema.Name != got.Schema.Name {
				t.Fatalf("schema name %q, want %q", got.Schema.Name, want.Schema.Name)
			}
		}
	}
}

// TestBatchAggregateMatchesScalar: the global batch sink agrees with
// NewAggregate on every aggregate function, provenance included, over data
// and over an empty input.
func TestBatchAggregateMatchesScalar(t *testing.T) {
	tbl := bigTable(t, storage.SegmentSize+100)
	empty := storage.NewTable(tbl.Schema(), false)
	mkAggs := func() []AggSpec {
		return []AggSpec{
			{Fn: AggCount, As: "n"},
			{Fn: AggCount, Arg: &ColRef{Name: "qty"}, As: "nq"},
			{Fn: AggSum, Arg: &ColRef{Name: "qty"}, As: "s"},
			{Fn: AggAvg, Arg: &ColRef{Name: "qty"}, As: "a"},
			{Fn: AggMin, Arg: &ColRef{Name: "qty"}, As: "lo"},
			{Fn: AggMax, Arg: &Arith{Op: OpAdd, L: &ColRef{Name: "qty"}, R: &Const{V: value.Int(1)}}, As: "hi"},
		}
	}
	for _, src := range []*storage.Table{tbl, empty} {
		agg, err := NewAggregate(NewTableScan(src), nil, mkAggs(), ctx())
		if err != nil {
			t.Fatal(err)
		}
		want := drain(t, agg)
		for _, size := range batchSizes {
			for _, compiled := range []bool{true, false} {
				bagg, err := NewBatchAggregate(NewBatchTableScan(src, size), mkAggs(), ctx(), size, compiled)
				if err != nil {
					t.Fatal(err)
				}
				got := drain(t, bagg)
				sameRelation(t, want, got, fmt.Sprintf("batch agg rows=%d size %d compiled %v", src.Len(), size, compiled))
				if want.Schema.Name != got.Schema.Name {
					t.Fatalf("agg schema name %q, want %q", got.Schema.Name, want.Schema.Name)
				}
			}
		}
	}
}

// TestBatchCountOnlyNeverClones: the COUNT(*) sink over a batch scan is the
// zero-copy fast path end to end.
func TestBatchCountOnlyNeverClones(t *testing.T) {
	tbl := bigTable(t, 3*storage.SegmentSize)
	before := settleClones(t)
	agg, err := NewBatchAggregate(NewBatchTableScan(tbl, DefaultBatchSize),
		[]AggSpec{{Fn: AggCount, As: "n"}}, ctx(), DefaultBatchSize, true)
	if err != nil {
		t.Fatal(err)
	}
	out := drain(t, agg)
	if d := storage.TupleClones() - before; d != 0 {
		t.Fatalf("COUNT(*) cloned %d tuples, want 0", d)
	}
	if got := out.Tuples[0].Cells[0].V.AsInt(); got != int64(tbl.Len()) {
		t.Fatalf("COUNT(*) = %d, want %d", got, tbl.Len())
	}
}

// stopRecorder is a BatchIterator stub that records Stop propagation.
type stopRecorder struct {
	in      BatchIterator
	stopped bool
}

func (s *stopRecorder) Schema() *schema.Schema           { return s.in.Schema() }
func (s *stopRecorder) NextBatch(b *Batch) (bool, error) { return s.in.NextBatch(b) }
func (s *stopRecorder) Stop()                            { s.stopped = true; stopIfStopper(s.in) }

// TestBatchLimitStopsProducerEarly: reaching the limit stops the producer
// immediately — before the consumer drains the final batch — so upstream
// buffers and scan workers are released deterministically.
func TestBatchLimitStopsProducerEarly(t *testing.T) {
	tbl := bigTable(t, 2*storage.SegmentSize)
	rec := &stopRecorder{in: NewBatchTableScan(tbl, 64)}
	lim := NewBatchLimit(rec, 10, 0)
	b := NewBatch(64)
	ok, err := lim.NextBatch(b)
	if err != nil || !ok {
		t.Fatalf("NextBatch = %v, %v", ok, err)
	}
	if b.Len() != 10 {
		t.Fatalf("limited batch has %d rows, want 10", b.Len())
	}
	if !rec.stopped {
		t.Fatal("limit reached but producer not stopped")
	}
	if ok, _ := lim.NextBatch(b); ok {
		t.Fatal("limit kept producing after quota")
	}
}

// TestFromBatchStopReleasesChain: Stop on the adapter reaches every batch
// operator beneath it.
func TestFromBatchStopReleasesChain(t *testing.T) {
	tbl := bigTable(t, storage.SegmentSize)
	rec := &stopRecorder{in: NewBatchTableScan(tbl, 32)}
	sel, err := NewBatchSelect(rec, batchPred(), ctx(), true)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewBatchProject(sel, []ProjectItem{{Expr: &ColRef{Name: "id"}}}, ctx(), 32, true)
	if err != nil {
		t.Fatal(err)
	}
	it := NewFromBatch(proj, 32)
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("Next = %v, %v", ok, err)
	}
	it.(Stopper).Stop()
	if !rec.stopped {
		t.Fatal("Stop did not propagate through the batch chain")
	}
	if _, ok, _ := it.Next(); ok {
		t.Fatal("iterator produced rows after Stop")
	}
}

// errBatch fails on the nth NextBatch call.
type errBatch struct {
	in    BatchIterator
	after int
	calls int
}

func (e *errBatch) Schema() *schema.Schema { return e.in.Schema() }
func (e *errBatch) NextBatch(b *Batch) (bool, error) {
	e.calls++
	if e.calls > e.after {
		return false, errors.New("mid-stream failure")
	}
	return e.in.NextBatch(b)
}

// TestBatchErrorPropagates: a mid-stream error surfaces through adapters
// and operators, and the stream terminates cleanly afterwards.
func TestBatchErrorPropagates(t *testing.T) {
	tbl := bigTable(t, storage.SegmentSize)
	src := &errBatch{in: NewBatchTableScan(tbl, 16), after: 2}
	proj, err := NewBatchProject(src, []ProjectItem{{Expr: &ColRef{Name: "id"}}}, ctx(), 16, true)
	if err != nil {
		t.Fatal(err)
	}
	it := NewFromBatch(proj, 16)
	if _, err := Collect(it); err == nil {
		t.Fatal("mid-stream error was swallowed")
	}
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("Next after error = %v, %v", ok, err)
	}
}

// TestToBatchRoundTrip: ToBatch ∘ FromBatch is the identity on a row
// stream, for the parallel-scan composition shape.
func TestToBatchRoundTrip(t *testing.T) {
	tbl := bigTable(t, 2*storage.SegmentSize+9)
	want := drain(t, NewTableScan(tbl))
	for _, size := range batchSizes {
		pit, err := NewSharedParallelScan(tbl, 4, nil, ctx(), true)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, NewFromBatch(NewToBatch(pit, size), size))
		sameRelation(t, want, got, fmt.Sprintf("to/from batch size %d", size))
	}
}

// TestSharedScansMatchAndSkipClones: the shared scan variants return the
// same rows as the cloning ones with a zero clone delta.
func TestSharedScansMatchAndSkipClones(t *testing.T) {
	tbl := bigTable(t, 2*storage.SegmentSize+100)
	want := drain(t, NewTableScan(tbl))

	before := settleClones(t)
	got := drain(t, NewSharedTableScan(tbl))
	if d := storage.TupleClones() - before; d != 0 {
		t.Fatalf("shared serial scan cloned %d tuples", d)
	}
	sameRelation(t, want, got, "shared serial scan")

	before = settleClones(t)
	pit, err := NewSharedParallelScan(tbl, 3, nil, ctx(), true)
	if err != nil {
		t.Fatal(err)
	}
	got = drain(t, pit)
	if d := storage.TupleClones() - before; d != 0 {
		t.Fatalf("shared parallel scan cloned %d tuples", d)
	}
	sameRelation(t, want, got, "shared parallel scan")

	// A fused predicate makes the cardinality unknown: the scan must not
	// advertise the full table size, or Collect would pre-allocate a
	// table-sized buffer for a selective query.
	filtered, err := NewSharedParallelScan(tbl, 3, batchPred(), ctx(), true)
	if err != nil {
		t.Fatal(err)
	}
	if h := sizeHint(filtered); h != -1 {
		t.Fatalf("filtered parallel scan SizeHint = %d, want -1", h)
	}
	drain(t, filtered) // release the workers
}

// TestCollectPreSizes: Collect over a Sizer-capable pipeline allocates the
// tuple slice once at the hinted capacity.
func TestCollectPreSizes(t *testing.T) {
	tbl := bigTable(t, 1000)
	out, err := Collect(NewLimit(NewSharedTableScan(tbl), 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("limit 10 = %d rows", out.Len())
	}
	if c := cap(out.Tuples); c != 10 {
		t.Fatalf("Collect capacity %d, want exactly the limit hint 10", c)
	}
	hint := sizeHint(NewSharedTableScan(tbl))
	if hint != tbl.Len() {
		t.Fatalf("scan SizeHint = %d, want %d", hint, tbl.Len())
	}
	rel := relation.New(tbl.Schema())
	if h := sizeHint(NewRelationScan(rel)); h != 0 {
		t.Fatalf("empty relation hint = %d", h)
	}
}
