package algebra

import (
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// Batch-native hash join: the build side is transposed into column
// vectors keyed by hash, and the probe side streams through in batches,
// evaluating keys straight off column vectors — no ToBatch/FromBatch seam,
// no per-row tuple materialization until a match actually survives the key
// confirm and residual.

type batchHashJoin struct {
	left BatchIterator
	out  *schema.Schema
	ctx  *EvalContext
	size int

	// Build side, materialized in the constructor: right rows stored
	// columnar, their key values dense, and hash buckets listing row
	// indexes in stream order (which is what keeps output order identical
	// to the Volcano join).
	rstore []ColVec
	rkeys  []value.Value
	build  map[uint64][]int32

	lkIdx  int // bound ColRef index of the left key, -1 when computed
	lkEval Compiled
	lkRefs []int
	resid  Predicate // nil when no residual

	lw, rw int
	row    []relation.Cell // scratch joined row for residual + emission

	// Probe cursor, persisted across NextBatch calls.
	buf        *Batch
	li         int
	lk         value.Value
	matches    []int32
	mi         int
	leftFilled bool
	loaded     bool
	done       bool
}

// NewBatchHashJoin is the batch-native equi-join on leftKey = rightKey
// with an optional residual predicate — same matching rules, output schema
// and output order as NewHashJoin (left stream order × build insertion
// order; null keys never join; hash matches are confirmed by value). The
// right input is drained and transposed into the columnar build table in
// the constructor; compiled selects compiled key/residual evaluation.
func NewBatchHashJoin(left, right BatchIterator, leftKey, rightKey, residual Expr, ctx *EvalContext, size int, compiled bool) (BatchIterator, error) {
	out, err := joinSchema(left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	if err := leftKey.Bind(left.Schema()); err != nil {
		return nil, err
	}
	if err := rightKey.Bind(right.Schema()); err != nil {
		return nil, err
	}
	if size < 1 {
		size = DefaultBatchSize
	}
	j := &batchHashJoin{
		left: left, out: out, ctx: ctx, size: size,
		lw: len(left.Schema().Attrs), rw: len(right.Schema().Attrs),
		build: make(map[uint64][]int32),
		lkIdx: -1,
	}
	if residual != nil {
		if err := residual.Bind(out); err != nil {
			return nil, err
		}
		if compiled {
			j.resid = CompilePredicate(residual)
		} else {
			j.resid = InterpretedPredicate(residual)
		}
	}
	if cr, ok := leftKey.(*ColRef); ok {
		j.lkIdx = cr.idx
	} else {
		j.lkRefs = ReferencedCols(leftKey)
	}
	if compiled {
		j.lkEval = Compile(leftKey)
	} else {
		j.lkEval = leftKey.Eval
	}
	j.rstore = make([]ColVec, j.rw)
	j.row = make([]relation.Cell, j.lw+j.rw)

	// Drain and transpose the build side.
	rkIdx := -1
	var rkRefs []int
	if cr, ok := rightKey.(*ColRef); ok {
		rkIdx = cr.idx
	} else {
		rkRefs = ReferencedCols(rightKey)
	}
	var rkEval Compiled
	if compiled {
		rkEval = Compile(rightKey)
	} else {
		rkEval = rightKey.Eval
	}
	rb := getBatch(size)
	defer func() {
		putBatch(rb)
		stopIfStopper(right)
	}()
	for {
		ok, err := right.NextBatch(rb)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		n := rb.Len()
		for i := 0; i < n; i++ {
			p := rb.phys(i)
			var k value.Value
			if rkIdx >= 0 {
				k = rb.cols[rkIdx].Vals[p]
			} else {
				k, err = rkEval(rb.scratchRowAt(p, rkRefs), ctx)
				if err != nil {
					return nil, err
				}
			}
			if k.IsNull() {
				continue // null keys never join
			}
			m := int32(len(j.rkeys))
			for c := range j.rstore {
				j.rstore[c].appendCell(rb.cols[c].Cell(int(p)))
			}
			j.rkeys = append(j.rkeys, k)
			h := k.Hash()
			j.build[h] = append(j.build[h], m)
		}
	}
	if len(j.build) == 0 {
		// Nothing can match; release the probe side without scanning it.
		stopIfStopper(left)
		j.done = true
	}
	return j, nil
}

func (j *batchHashJoin) Schema() *schema.Schema { return j.out }

// Stop releases the probe batch and both inputs' resources; the build
// table is dropped for the collector.
func (j *batchHashJoin) Stop() {
	j.done = true
	if j.buf != nil {
		putBatch(j.buf)
		j.buf = nil
	}
	j.rstore, j.rkeys, j.build = nil, nil, nil
	stopIfStopper(j.left)
}

// leftKeyAt evaluates the left key for physical slot p of the probe batch.
func (j *batchHashJoin) leftKeyAt(p int32) (value.Value, error) {
	if j.lkIdx >= 0 {
		return j.buf.cols[j.lkIdx].Vals[p], nil
	}
	return j.lkEval(j.buf.scratchRowAt(p, j.lkRefs), j.ctx)
}

func (j *batchHashJoin) NextBatch(b *Batch) (bool, error) {
	if j.done {
		return false, nil
	}
	if j.buf == nil {
		j.buf = getBatch(j.size)
	}
	out := b.ownedCols(j.lw + j.rw)
	cnt := 0
	for {
		if !j.loaded {
			ok, err := j.left.NextBatch(j.buf)
			if err != nil {
				j.Stop()
				return false, err
			}
			if !ok {
				j.Stop()
				if cnt > 0 {
					b.setOwned(out, cnt)
					return true, nil
				}
				return false, nil
			}
			j.li, j.matches, j.loaded = 0, nil, true
		}
		for j.li < j.buf.Len() {
			p := j.buf.phys(j.li)
			if j.matches == nil {
				lk, err := j.leftKeyAt(p)
				if err != nil {
					j.Stop()
					return false, err
				}
				j.mi, j.leftFilled = 0, false
				if lk.IsNull() {
					j.li++
					continue
				}
				j.lk = lk
				j.matches = j.build[lk.Hash()]
				if j.matches == nil {
					j.matches = emptyMatches // distinguish "probed" from "not yet"
				}
			}
			for j.mi < len(j.matches) {
				m := j.matches[j.mi]
				j.mi++
				if !value.EqualPtr(&j.lk, &j.rkeys[m]) {
					continue // hash collision
				}
				if !j.leftFilled {
					for c := 0; c < j.lw; c++ {
						j.row[c] = j.buf.cols[c].Cell(int(p))
					}
					j.leftFilled = true
				}
				for c := 0; c < j.rw; c++ {
					j.row[j.lw+c] = j.rstore[c].Cell(int(m))
				}
				if j.resid != nil {
					keep, err := j.resid(relation.Tuple{Cells: j.row}, j.ctx)
					if err != nil {
						j.Stop()
						return false, err
					}
					if !keep {
						continue
					}
				}
				for c := range out {
					out[c].appendCell(j.row[c])
				}
				cnt++
				if cnt >= j.size {
					b.setOwned(out, cnt)
					return true, nil
				}
			}
			j.matches = nil
			j.li++
		}
		j.loaded = false
	}
}

// emptyMatches marks a probed key with no bucket; non-nil so the cursor
// does not re-probe.
var emptyMatches = []int32{}
