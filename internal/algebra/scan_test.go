package algebra

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/tag"
	"repro/internal/value"
)

// settleClones waits for the process-wide clone counter to stop moving and
// returns its value. Clone-delta assertions need a quiet baseline: workers
// of an earlier test's stopped or abandoned parallel scan may still finish
// their claimed segments (Stop doesn't cancel a segment mid-copy), and
// their clones would otherwise land inside this test's delta window.
func settleClones(t *testing.T) int64 {
	t.Helper()
	runtime.GC() // run finalizers of abandoned scans so their workers exit
	before := storage.TupleClones()
	for i := 0; i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
		now := storage.TupleClones()
		if now == before {
			return now
		}
		before = now
	}
	t.Fatal("clone counter never settled")
	return 0
}

// bigTable builds an n-row table spanning multiple segments, with every
// 7th row deleted so liveness filtering is exercised, and ~1/3 of cells
// tagged so indicator predicates hit both tagged and untagged rows.
func bigTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	sc := schema.MustNew("big", []schema.Attr{
		{Name: "id", Kind: value.KindInt, Required: true},
		{Name: "grp", Kind: value.KindString,
			Indicators: []tag.Indicator{{Name: "source", Kind: value.KindString}}},
		{Name: "qty", Kind: value.KindInt},
	}, "id")
	tbl := storage.NewTable(sc, false)
	r := rand.New(rand.NewSource(int64(n)))
	var ids []storage.RowID
	for i := 0; i < n; i++ {
		cell := relation.Cell{V: value.Str(fmt.Sprintf("g%d", i%5))}
		if i%3 == 0 {
			cell.Tags = tag.NewSet(tag.Tag{Indicator: "source", Value: value.Str([]string{"a", "b"}[i%2])})
		}
		id, err := tbl.Insert(relation.Tuple{Cells: []relation.Cell{
			{V: value.Int(int64(i))},
			cell,
			{V: value.Int(int64(r.Intn(1000)))},
		}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < n; i += 7 {
		if err := tbl.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func sameRelation(t *testing.T, want, got *relation.Relation, label string) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	w, g := relation.Format(want, true), relation.Format(got, true)
	if w != g {
		t.Fatalf("%s: output differs from serial scan", label)
	}
}

func TestTableScanStreamsAllSegments(t *testing.T) {
	const n = storage.SegmentSize + 500
	tbl := bigTable(t, n)
	out := drain(t, NewTableScan(tbl))
	if out.Len() != tbl.Len() {
		t.Fatalf("scan = %d rows, table has %d live", out.Len(), tbl.Len())
	}
	// Row-ID order: the id column is the insert order.
	prev := int64(-1)
	for _, tup := range out.Tuples {
		id := tup.Cells[0].V.AsInt()
		if id <= prev {
			t.Fatalf("scan out of row-ID order: %d after %d", id, prev)
		}
		prev = id
	}
}

// TestParallelScanMatchesSerial is the ordering property test: for every
// degree, with and without a fused predicate, the parallel scan's output is
// byte-identical to the serial scan's (tags and sources included).
func TestParallelScanMatchesSerial(t *testing.T) {
	const n = 3*storage.SegmentSize + 123
	tbl := bigTable(t, n)

	serialAll := drain(t, NewTableScan(tbl))
	pred := func() Expr {
		return &Logic{Op: OpOr,
			L: &Cmp{Op: OpGt, L: &ColRef{Name: "qty"}, R: &Const{V: value.Int(500)}},
			R: &Cmp{Op: OpEq, L: &IndRef{Col: "grp", Indicator: "source"}, R: &Const{V: value.Str("a")}},
		}
	}
	sel, err := NewSelect(NewTableScan(tbl), pred(), ctx())
	if err != nil {
		t.Fatal(err)
	}
	serialPred := drain(t, sel)
	if serialPred.Len() == 0 || serialPred.Len() == serialAll.Len() {
		t.Fatalf("weak predicate: %d of %d", serialPred.Len(), serialAll.Len())
	}

	for _, degree := range []int{1, 2, 3, 4, 8, 64} {
		it, err := NewParallelScan(tbl, degree, nil, ctx())
		if err != nil {
			t.Fatal(err)
		}
		sameRelation(t, serialAll, drain(t, it), fmt.Sprintf("degree %d no pred", degree))

		it, err = NewParallelScan(tbl, degree, pred(), ctx())
		if err != nil {
			t.Fatal(err)
		}
		sameRelation(t, serialPred, drain(t, it), fmt.Sprintf("degree %d fused pred", degree))
	}
}

func TestParallelScanEmptyAndTinyTables(t *testing.T) {
	sc := schema.MustNew("tiny", []schema.Attr{{Name: "a", Kind: value.KindInt}})
	tbl := storage.NewTable(sc, false)
	it, err := NewParallelScan(tbl, 8, nil, ctx())
	if err != nil {
		t.Fatal(err)
	}
	if out := drain(t, it); out.Len() != 0 {
		t.Fatalf("empty table scan = %d rows", out.Len())
	}
	for i := 0; i < 10; i++ {
		if _, err := tbl.Insert(relation.NewTuple(value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	it, err = NewParallelScan(tbl, 8, nil, ctx())
	if err != nil {
		t.Fatal(err)
	}
	if out := drain(t, it); out.Len() != 10 {
		t.Fatalf("tiny table scan = %d rows", out.Len())
	}
}

func TestParallelScanPredicateError(t *testing.T) {
	tbl := bigTable(t, 2*storage.SegmentSize)
	// LIKE over an int errors at eval time in the workers.
	bad := &Like{E: &ColRef{Name: "qty"}, Pattern: "x%"}
	it, err := NewParallelScan(tbl, 4, bad, ctx())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Collect(it)
	if err == nil {
		t.Fatal("worker predicate error was swallowed")
	}
	// The error is terminal: further Next calls end the stream cleanly
	// instead of blocking on segments the stopped workers won't deliver.
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("Next after error = %v, %v", ok, err)
	}
}

// TestParallelScanAbandoned checks that dropping the iterator mid-stream
// (the LIMIT shape) leaves no stuck workers: results are buffered for every
// segment so workers always run to completion.
func TestParallelScanAbandoned(t *testing.T) {
	tbl := bigTable(t, 3*storage.SegmentSize)
	it, err := NewParallelScan(tbl, 4, nil, ctx())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok, err := it.Next(); err != nil || !ok {
			t.Fatalf("Next %d = %v, %v", i, ok, err)
		}
	}
	// Iterator goes out of scope here; goroutine leak would trip -race
	// builds' leak checks in long runs and block test exit if workers
	// required a consumer.
}

// TestParallelScanBackpressure: a consumer that stops pulling caps the
// workers at the in-flight segment budget (2×degree), so resident clones
// stay O(degree segments), not O(table).
func TestParallelScanBackpressure(t *testing.T) {
	const nSeg = 12
	tbl := bigTable(t, nSeg*storage.SegmentSize)
	before := settleClones(t)
	it, err := NewParallelScan(tbl, 2, nil, ctx())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("Next = %v, %v", ok, err)
	}
	// Let the workers run as far as the token budget allows, then stall.
	time.Sleep(200 * time.Millisecond)
	cloned := storage.TupleClones() - before
	// Budget 4 in flight + 1 consumed + slack; far below the 12 segments
	// the old unbounded fan-out would have cloned.
	if cloned > 7*storage.SegmentSize {
		t.Fatalf("stalled consumer: %d tuples cloned, want bounded by token budget", cloned)
	}
}

// TestParallelScanStop: Stop releases the workers deterministically and a
// (contract-violating but tolerated) Next afterwards terminates instead of
// waiting for segments that will never arrive.
func TestParallelScanStop(t *testing.T) {
	tbl := bigTable(t, 6*storage.SegmentSize)
	it, err := NewParallelScan(tbl, 2, nil, ctx())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("Next = %v, %v", ok, err)
	}
	it.(Stopper).Stop()
	for i := 0; i < 7*storage.SegmentSize; i++ {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatalf("Next after Stop: %v", err)
		}
		if !ok {
			return
		}
	}
	t.Fatal("stream did not terminate after Stop")
}

// TestIndexScanLazyClones is the regression test for the old eager
// NewIndexScan, which cloned every matching row before the first Next().
// A LIMIT-1 consumer must cost O(1) tuple clones, not O(matches).
func TestIndexScanLazyClones(t *testing.T) {
	const n = 5000
	tbl := bigTable(t, n)
	if err := tbl.CreateIndex(storage.IndexTarget{Attr: "qty"}, storage.IndexBTree); err != nil {
		t.Fatal(err)
	}
	// A range matching most of the table.
	it, err := NewIndexScan(tbl, storage.IndexTarget{Attr: "qty"},
		storage.Incl(value.Int(0)), storage.Incl(value.Int(1000)))
	if err != nil {
		t.Fatal(err)
	}
	before := settleClones(t)
	lim := NewLimit(it, 1, 0)
	out := drain(t, lim)
	cloned := storage.TupleClones() - before
	if out.Len() != 1 {
		t.Fatalf("limit 1 over index scan = %d rows", out.Len())
	}
	// One clone for the emitted row; allow a little slack for skipped
	// dead rows, but nothing near the thousands of matches.
	if cloned > 8 {
		t.Fatalf("LIMIT 1 over indexed scan cloned %d tuples, want O(1)", cloned)
	}
}

// TestTableScanLazyClones: the serial scan under LIMIT clones at most one
// segment's worth of tuples, never the whole table.
func TestTableScanLazyClones(t *testing.T) {
	tbl := bigTable(t, 4*storage.SegmentSize)
	before := settleClones(t)
	out := drain(t, NewLimit(NewTableScan(tbl), 10, 0))
	cloned := storage.TupleClones() - before
	if out.Len() != 10 {
		t.Fatalf("limit 10 = %d rows", out.Len())
	}
	if cloned > storage.SegmentSize {
		t.Fatalf("LIMIT 10 cloned %d tuples, want <= one segment (%d)", cloned, storage.SegmentSize)
	}
}
