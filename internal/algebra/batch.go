package algebra

import (
	"sync"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file is the vectorized execution tier: batch-at-a-time iterators
// that amortize interface dispatch over DefaultBatchSize rows and evaluate
// predicates through compiled closures (Compile), beside the row-at-a-time
// Volcano tier in ops.go. The two tiers produce byte-identical output; the
// planner picks per plan shape. ToBatch/FromBatch adapt between them, so
// unported operators (joins, sorts, distinct) keep working unchanged on
// either side of a batch pipeline.

// DefaultBatchSize is the rows-per-batch the vectorized tier uses unless a
// caller asks otherwise: large enough to amortize per-batch dispatch to
// noise, small enough that a batch of tuples stays cache-resident.
const DefaultBatchSize = 1024

// Batch is one unit of vectorized data flow: a window of tuples plus an
// optional selection vector. Rows may alias producer-owned storage (a
// segment snapshot, an upstream buffer) and are valid only until the next
// NextBatch call on the producer; the selection vector, when non-nil,
// lists the live row indexes in order. Consumers must treat rows as
// read-only — batch pipelines run over shared, zero-clone segment reads.
type Batch struct {
	rows []relation.Tuple
	sel  []int32

	// rowBuf and selBuf are the batch's owned backing storage, reused
	// across refills; producers that materialize rows (ToBatch, projection)
	// fill rowBuf, filters fill selBuf.
	rowBuf []relation.Tuple
	selBuf []int32
}

// NewBatch returns a batch with owned capacity for size rows, bypassing
// the pool; most callers want getBatch/putBatch instead.
func NewBatch(size int) *Batch {
	if size < 1 {
		size = 1
	}
	return &Batch{rowBuf: make([]relation.Tuple, 0, size), selBuf: make([]int32, 0, size)}
}

// Len reports the number of live rows in the batch.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return len(b.rows)
}

// Row returns the i-th live row (selection applied).
func (b *Batch) Row(i int) relation.Tuple {
	if b.sel != nil {
		return b.rows[b.sel[i]]
	}
	return b.rows[i]
}

// reset detaches the batch from any producer storage.
func (b *Batch) reset() { b.rows, b.sel = nil, nil }

// truncate narrows the batch to its live rows [lo, hi).
func (b *Batch) truncate(lo, hi int) {
	if b.sel != nil {
		b.sel = b.sel[lo:hi]
		return
	}
	b.rows = b.rows[lo:hi]
}

// ensureRows returns the owned row buffer grown to capacity >= n.
func (b *Batch) ensureRows(n int) []relation.Tuple {
	if cap(b.rowBuf) < n {
		b.rowBuf = make([]relation.Tuple, 0, n)
	}
	return b.rowBuf[:n]
}

// batchPool recycles batch buffers across plans. Batches hold tuple slices
// a kilorow long; recycling them keeps the vectorized hot path
// allocation-free once warm.
var batchPool = sync.Pool{New: func() any { return &Batch{} }}

// getBatch fetches a pooled batch with capacity for size rows.
func getBatch(size int) *Batch {
	if size < 1 {
		size = 1
	}
	b := batchPool.Get().(*Batch)
	if cap(b.rowBuf) < size {
		b.rowBuf = make([]relation.Tuple, 0, size)
	}
	if cap(b.selBuf) < size {
		b.selBuf = make([]int32, 0, size)
	}
	b.reset()
	return b
}

// putBatch returns a batch to the pool, dropping its row references so a
// pooled buffer never pins heap segments or result tuples.
func putBatch(b *Batch) {
	if b == nil {
		return
	}
	clear(b.rowBuf[:cap(b.rowBuf)])
	b.reset()
	batchPool.Put(b)
}

// BatchIterator is the pull-based batch stream the vectorized operators
// implement. NextBatch refills b — rows, selection, possibly aliasing
// storage owned by the producer and valid until the next call — and
// reports false at end of stream. A delivered batch always has at least
// one live row. Iterators holding buffers or background resources also
// implement Stopper; an exhausted or errored iterator has released its own
// resources already, and Stop is idempotent.
type BatchIterator interface {
	Schema() *schema.Schema
	NextBatch(b *Batch) (bool, error)
}

// stopIfStopper releases x's resources when it is a Stopper.
func stopIfStopper(x any) {
	if s, ok := x.(Stopper); ok {
		s.Stop()
	}
}

// ---- Batch table scan ----

type batchTableScan struct {
	t    *storage.Table
	size int
	nSeg int
	seg  int
	buf  []relation.Tuple // recycled segment snapshot buffer
	rows []relation.Tuple
	pos  int
	done bool
}

// NewBatchTableScan streams a storage table in batches of up to size rows,
// segment-aligned: one shared (zero-clone) segment snapshot feeds
// consecutive batches, a batch never spans segments, and rows arrive in
// row-ID order. The scan recycles a single segment buffer for its whole
// lifetime — a full-table scan allocates one slice, not one per segment —
// which is why delivered batches are only valid until the next NextBatch.
// The tuples share cell storage with the heap: read-only consumers only,
// per NewSharedTableScan's contract.
func NewBatchTableScan(t *storage.Table, size int) BatchIterator {
	if size < 1 {
		size = DefaultBatchSize
	}
	return &batchTableScan{t: t, size: size, nSeg: t.Segments()}
}

func (s *batchTableScan) Schema() *schema.Schema { return s.t.Schema() }

func (s *batchTableScan) SizeHint() int { return s.t.Len() }

// Stop drops the recycled segment buffer so an early-terminated scan (a
// filled LIMIT) releases its window over the heap immediately.
func (s *batchTableScan) Stop() {
	s.done = true
	s.buf, s.rows = nil, nil
}

func (s *batchTableScan) NextBatch(b *Batch) (bool, error) {
	if s.done {
		return false, nil
	}
	for s.pos >= len(s.rows) {
		if s.seg >= s.nSeg {
			return false, nil
		}
		if s.buf == nil {
			s.buf = make([]relation.Tuple, 0, storage.SegmentSize)
		}
		s.rows = s.t.ScanSegmentRowsSharedInto(s.seg, s.buf)
		s.buf = s.rows[:0]
		s.seg++
		s.pos = 0
	}
	n := len(s.rows) - s.pos
	if n > s.size {
		n = s.size
	}
	b.rows = s.rows[s.pos : s.pos+n]
	b.sel = nil
	s.pos += n
	return true, nil
}

// ---- Batch rename ----

type batchRename struct {
	in  BatchIterator
	out *schema.Schema
}

// NewBatchRename renames the stream's relation, the batch counterpart of
// NewRename's relation-name case.
func NewBatchRename(in BatchIterator, relName string) BatchIterator {
	s := in.Schema().Clone()
	s.Name = relName
	return &batchRename{in: in, out: s}
}

func (r *batchRename) Schema() *schema.Schema           { return r.out }
func (r *batchRename) SizeHint() int                    { return sizeHint(r.in) }
func (r *batchRename) NextBatch(b *Batch) (bool, error) { return r.in.NextBatch(b) }
func (r *batchRename) Stop()                            { stopIfStopper(r.in) }

// ---- Batch select ----

type batchSelect struct {
	in   BatchIterator
	pred Predicate
	ctx  *EvalContext
}

// NewBatchSelect keeps the rows whose predicate is definitely true,
// refining each batch's selection vector in place — rows are not copied or
// compacted, the vector just skips the losers. The predicate is bound
// against in's schema; compiled selects the Compile fast path or the
// interpreted tree walk (for A/B measurement).
func NewBatchSelect(in BatchIterator, pred Expr, ctx *EvalContext, compiled bool) (BatchIterator, error) {
	if err := pred.Bind(in.Schema()); err != nil {
		return nil, err
	}
	var p Predicate
	if compiled {
		p = CompilePredicate(pred)
	} else {
		p = InterpretedPredicate(pred)
	}
	return &batchSelect{in: in, pred: p, ctx: ctx}, nil
}

func (s *batchSelect) Schema() *schema.Schema { return s.in.Schema() }

func (s *batchSelect) Stop() { stopIfStopper(s.in) }

func (s *batchSelect) NextBatch(b *Batch) (bool, error) {
	for {
		ok, err := s.in.NextBatch(b)
		if err != nil || !ok {
			return false, err
		}
		// Refine in place: when a selection vector already exists (a select
		// upstream), the write index never passes the read index, so reusing
		// selBuf is safe.
		sel := b.selBuf[:0]
		if b.sel != nil {
			for _, i := range b.sel {
				keep, err := s.pred(b.rows[i], s.ctx)
				if err != nil {
					return false, err
				}
				if keep {
					sel = append(sel, i)
				}
			}
		} else {
			for i := range b.rows {
				keep, err := s.pred(b.rows[i], s.ctx)
				if err != nil {
					return false, err
				}
				if keep {
					sel = append(sel, int32(i))
				}
			}
		}
		if len(sel) > 0 {
			b.sel = sel
			return true, nil
		}
	}
}

// ---- Batch project ----

type batchProject struct {
	in      BatchIterator
	proj    *projection
	ctx     *EvalContext
	size    int
	buf     *Batch // pooled input batch, released on exhaustion/Stop
	stopped bool
}

// NewBatchProject projects batches through the same bound projection core
// as NewProject — plain column references copy cells (tags and sources
// ride along), computed expressions produce derived cells — writing output
// tuples into the consumer's batch buffer. Every output row gets a fresh
// cell slice, which is what makes zero-clone scans safe underneath.
func NewBatchProject(in BatchIterator, items []ProjectItem, ctx *EvalContext, size int, compiled bool) (BatchIterator, error) {
	proj, err := bindProjection(in.Schema(), items, compiled)
	if err != nil {
		return nil, err
	}
	if size < 1 {
		size = DefaultBatchSize
	}
	return &batchProject{in: in, proj: proj, ctx: ctx, size: size}, nil
}

func (p *batchProject) Schema() *schema.Schema { return p.proj.out }

func (p *batchProject) SizeHint() int { return sizeHint(p.in) }

// Stop releases the input batch back to the pool and stops the producer.
func (p *batchProject) Stop() {
	p.stopped = true
	if p.buf != nil {
		putBatch(p.buf)
		p.buf = nil
	}
	stopIfStopper(p.in)
}

func (p *batchProject) NextBatch(b *Batch) (bool, error) {
	if p.stopped {
		return false, nil
	}
	if p.buf == nil {
		p.buf = getBatch(p.size)
	}
	ok, err := p.in.NextBatch(p.buf)
	if err != nil || !ok {
		p.Stop()
		return false, err
	}
	n := p.buf.Len()
	rows := b.ensureRows(n)
	for i := 0; i < n; i++ {
		t, err := p.proj.row(p.buf.Row(i), p.ctx)
		if err != nil {
			p.Stop()
			return false, err
		}
		rows[i] = t
	}
	b.rows, b.sel = rows, nil
	return true, nil
}

// ---- Batch limit ----

type batchLimit struct {
	in      BatchIterator
	limit   int
	offset  int
	emitted int
	skipped int
	done    bool
}

// NewBatchLimit emits at most limit rows after skipping offset (negative
// limit means unlimited), trimming batches at the boundaries. Once the
// limit is reached the producer is stopped immediately, so upstream batch
// buffers are released before the final batch is even consumed.
func NewBatchLimit(in BatchIterator, limit, offset int) BatchIterator {
	return &batchLimit{in: in, limit: limit, offset: offset}
}

func (l *batchLimit) Schema() *schema.Schema { return l.in.Schema() }

func (l *batchLimit) SizeHint() int {
	hint := sizeHint(l.in)
	if l.limit >= 0 && (hint < 0 || l.limit < hint) {
		return l.limit
	}
	return hint
}

func (l *batchLimit) Stop() {
	l.done = true
	stopIfStopper(l.in)
}

func (l *batchLimit) NextBatch(b *Batch) (bool, error) {
	if l.done {
		return false, nil
	}
	for {
		ok, err := l.in.NextBatch(b)
		if err != nil || !ok {
			l.Stop()
			return false, err
		}
		n := b.Len()
		if l.skipped < l.offset {
			skip := l.offset - l.skipped
			if skip >= n {
				l.skipped += n
				continue
			}
			l.skipped = l.offset
			b.truncate(skip, n)
			n -= skip
		}
		if l.limit >= 0 {
			remain := l.limit - l.emitted
			if remain <= 0 {
				l.Stop()
				return false, nil
			}
			if n > remain {
				b.truncate(0, remain)
				n = remain
			}
		}
		l.emitted += n
		if l.limit >= 0 && l.emitted >= l.limit {
			// Stop eagerly: the delivered batch stays valid (its rows alias
			// segment snapshots or the consumer's own buffer, never the
			// producer's pooled storage).
			l.Stop()
		}
		return true, nil
	}
}

// ---- Batch aggregate sink ----

// NewBatchAggregate computes global (ungrouped) aggregates over a batch
// stream, draining it eagerly like NewAggregate and yielding the single
// result row — same output schema, same provenance folding, same
// empty-input behavior (one row). COUNT(*)-only aggregations never touch
// the rows at all: each batch contributes its length, which is the
// vectorized tier's fastest path. compiled selects Compile for the
// aggregate arguments.
func NewBatchAggregate(in BatchIterator, aggs []AggSpec, ctx *EvalContext, size int, compiled bool) (Iterator, error) {
	inS := in.Schema()
	if err := bindAggSpecs(inS, aggs); err != nil {
		return nil, err
	}
	attrs := make([]schema.Attr, 0, len(aggs))
	for _, a := range aggs {
		attrs = append(attrs, schema.Attr{Name: a.As, Kind: value.KindNull})
	}
	outS, err := schema.New(inS.Name+"_agg", attrs)
	if err != nil {
		return nil, err
	}

	states := newAggStates(len(aggs))
	argRefs := make([][]int, len(aggs))
	evals := make([]Compiled, len(aggs))
	countOnly := true
	for i := range aggs {
		if aggs[i].Arg == nil {
			continue
		}
		countOnly = false
		argRefs[i] = ReferencedCols(aggs[i].Arg)
		if compiled {
			evals[i] = Compile(aggs[i].Arg)
		} else {
			evals[i] = aggs[i].Arg.Eval
		}
	}

	if size < 1 {
		size = DefaultBatchSize
	}
	b := getBatch(size)
	defer func() {
		putBatch(b)
		stopIfStopper(in)
	}()
	for {
		ok, err := in.NextBatch(b)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		n := b.Len()
		if countOnly {
			for i := range states {
				states[i].count += int64(n)
			}
			continue
		}
		for r := 0; r < n; r++ {
			t := b.Row(r)
			for i := range aggs {
				var v value.Value
				if aggs[i].Arg != nil {
					var err error
					v, err = evals[i](t, ctx)
					if err != nil {
						return nil, err
					}
				}
				states[i].foldRow(&aggs[i], v, argRefs[i], t)
			}
		}
	}
	cells := make([]relation.Cell, 0, len(aggs))
	for i, a := range aggs {
		c := states[i].cell
		c.V = states[i].finish(a.Fn)
		cells = append(cells, c)
	}
	return &aggregateOp{out: outS, rows: []relation.Tuple{{Cells: cells}}}, nil
}

// ---- Adapters ----

type toBatch struct {
	in   Iterator
	size int
	done bool
}

// NewToBatch adapts a row iterator into a batch stream, filling the
// consumer's batch buffer with up to size rows per call. It is how
// row-producing sources the batch tier has no native port for — notably
// the parallel scan's ordered merge — compose with batch operators.
func NewToBatch(in Iterator, size int) BatchIterator {
	if size < 1 {
		size = DefaultBatchSize
	}
	return &toBatch{in: in, size: size}
}

func (a *toBatch) Schema() *schema.Schema { return a.in.Schema() }

func (a *toBatch) SizeHint() int { return sizeHint(a.in) }

func (a *toBatch) Stop() {
	a.done = true
	stopIfStopper(a.in)
}

func (a *toBatch) NextBatch(b *Batch) (bool, error) {
	if a.done {
		return false, nil
	}
	rows := b.ensureRows(a.size)[:0]
	for len(rows) < a.size {
		t, ok, err := a.in.Next()
		if err != nil {
			a.Stop()
			return false, err
		}
		if !ok {
			a.done = true
			stopIfStopper(a.in)
			break
		}
		rows = append(rows, t)
	}
	if len(rows) == 0 {
		return false, nil
	}
	b.rows, b.sel = rows, nil
	return true, nil
}

type fromBatch struct {
	in   BatchIterator
	size int
	buf  *Batch
	pos  int
	done bool
}

// NewFromBatch adapts a batch stream back into a row iterator, so scalar
// operators (sorts, joins, distinct, Collect) consume vectorized pipelines
// unchanged. It owns one pooled batch, released deterministically when the
// stream ends or Stop is called.
func NewFromBatch(in BatchIterator, size int) Iterator {
	if size < 1 {
		size = DefaultBatchSize
	}
	return &fromBatch{in: in, size: size}
}

func (f *fromBatch) Schema() *schema.Schema { return f.in.Schema() }

func (f *fromBatch) SizeHint() int { return sizeHint(f.in) }

// Stop implements Stopper: releases the adapter's batch and stops the
// batch pipeline beneath it (which releases its own buffers and any scan
// workers). plan teardown calls it via plan.release.
func (f *fromBatch) Stop() {
	f.done = true
	if f.buf != nil {
		putBatch(f.buf)
		f.buf = nil
	}
	stopIfStopper(f.in)
}

func (f *fromBatch) Next() (relation.Tuple, bool, error) {
	if f.done {
		return relation.Tuple{}, false, nil
	}
	if f.buf == nil {
		f.buf = getBatch(f.size)
	}
	for f.pos >= f.buf.Len() {
		ok, err := f.in.NextBatch(f.buf)
		if err != nil || !ok {
			f.Stop()
			return relation.Tuple{}, false, err
		}
		f.pos = 0
	}
	t := f.buf.Row(f.pos)
	f.pos++
	return t, true, nil
}
