package algebra

import (
	"fmt"
	"sync"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/tag"
	"repro/internal/value"
)

// This file is the vectorized execution tier: batch-at-a-time iterators
// that move column vectors instead of rows, beside the row-at-a-time
// Volcano tier in ops.go. A batch is a window of column runs — for table
// scans the runs alias the heap's immutable per-segment column storage, so
// a scan→select→project pipeline touches only the columns the query names
// and never materializes a row. The two tiers produce byte-identical
// output; the planner picks per plan shape. ToBatch/FromBatch adapt
// between them, so unported operators (sorts, distinct, set ops) keep
// working unchanged on either side of a batch pipeline.

// DefaultBatchSize is the rows-per-batch the vectorized tier uses unless a
// caller asks otherwise: large enough to amortize per-batch dispatch to
// noise, small enough that a batch's column windows stay cache-resident.
const DefaultBatchSize = 1024

// ColVec is one column of a batch: a window of values plus the optional
// quality-metadata runs riding alongside. Tags/Srcs/Meta are either empty
// (no cell in the window carries that metadata) or value-aligned. Vectors
// may alias producer-owned storage — segment column runs, an upstream
// buffer — and are read-only for consumers.
type ColVec struct {
	Vals []value.Value
	Tags []tag.Set
	Srcs []tag.Sources
	Meta []map[string]tag.Set
}

// Cell materializes slot off as a relation.Cell.
func (v *ColVec) Cell(off int) relation.Cell {
	c := relation.Cell{V: v.Vals[off]}
	if off < len(v.Tags) {
		c.Tags = v.Tags[off]
	}
	if off < len(v.Srcs) {
		c.Sources = v.Srcs[off]
	}
	if off < len(v.Meta) {
		c.Meta = v.Meta[off]
	}
	return c
}

// appendCell appends one cell to the vector. Metadata runs stay absent
// until the first cell that carries them, then are zero-backfilled so they
// remain value-aligned — mirroring the heap's column-run layout.
func (v *ColVec) appendCell(c relation.Cell) {
	off := len(v.Vals)
	v.Vals = append(v.Vals, c.V)
	if len(v.Tags) > 0 || !c.Tags.IsEmpty() {
		var zero tag.Set
		for len(v.Tags) < off {
			v.Tags = append(v.Tags, zero)
		}
		v.Tags = append(v.Tags, c.Tags)
	}
	if len(v.Srcs) > 0 || len(c.Sources) > 0 {
		for len(v.Srcs) < off {
			v.Srcs = append(v.Srcs, nil)
		}
		v.Srcs = append(v.Srcs, c.Sources)
	}
	if len(v.Meta) > 0 || len(c.Meta) > 0 {
		for len(v.Meta) < off {
			v.Meta = append(v.Meta, nil)
		}
		v.Meta = append(v.Meta, c.Meta)
	}
}

// reset empties the vector for refilling, keeping backing capacity.
func (v *ColVec) reset() {
	v.Vals = v.Vals[:0]
	v.Tags = v.Tags[:0]
	v.Srcs = v.Srcs[:0]
	v.Meta = v.Meta[:0]
}

// release drops the vector's references so pooled buffers never pin heap
// segments or result values.
func (v *ColVec) release() {
	clear(v.Vals[:cap(v.Vals)])
	clear(v.Tags[:cap(v.Tags)])
	clear(v.Srcs[:cap(v.Srcs)])
	clear(v.Meta[:cap(v.Meta)])
	v.reset()
}

// Batch is one unit of vectorized data flow: n row slots of column
// vectors plus an optional selection vector listing the live slots in
// order. Vectors may alias producer-owned storage (segment column runs, an
// upstream buffer) and are valid only until the next NextBatch call on the
// producer. Consumers must treat them as read-only — batch pipelines run
// over shared, zero-clone segment reads.
//
// Producers must never deliver vectors (or a selection) aliasing a
// *pooled* batch's storage: batchLimit stops its producer eagerly once the
// quota fills, which returns the producer's pooled buffers to the global
// pool while the consumer is still reading the final batch — a buffer
// another goroutine may immediately pick up and overwrite. Delivered data
// may alias only immutable heap runs, the consumer's own batch, or
// producer-owned unpooled arrays.
type Batch struct {
	n    int
	cols []ColVec
	sel  []int32

	// colBuf and selBuf are the batch's owned backing storage, reused
	// across refills; producers that materialize columns (ToBatch,
	// computed projections, the join) fill colBuf, filters fill selBuf.
	// scratch is the reusable row for scalar expression evaluation over
	// column slots (scratchRowAt).
	colBuf  []ColVec
	selBuf  []int32
	scratch []relation.Cell
}

// NewBatch returns a batch with owned selection capacity for size rows,
// bypassing the pool; most callers want getBatch/putBatch instead.
func NewBatch(size int) *Batch {
	if size < 1 {
		size = 1
	}
	return &Batch{selBuf: make([]int32, 0, size)}
}

// Len reports the number of live rows in the batch.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// phys maps the i-th live row to its physical slot offset.
func (b *Batch) phys(i int) int32 {
	if b.sel != nil {
		return b.sel[i]
	}
	return int32(i)
}

// Row materializes the i-th live row (selection applied) with a fresh cell
// slice, safe to retain past the batch's lifetime.
func (b *Batch) Row(i int) relation.Tuple {
	p := int(b.phys(i))
	cells := make([]relation.Cell, len(b.cols))
	for c := range b.cols {
		cells[c] = b.cols[c].Cell(p)
	}
	return relation.Tuple{Cells: cells}
}

// scratchRowAt assembles physical slot p as a row in the batch's scratch
// buffer, filling only the referenced columns — sufficient for any bound
// evaluator, since evaluators read exactly their ReferencedCols. The tuple
// aliases the scratch buffer and is valid until the next call.
func (b *Batch) scratchRowAt(p int32, refs []int) relation.Tuple {
	w := len(b.cols)
	if cap(b.scratch) < w {
		b.scratch = make([]relation.Cell, w)
	}
	cells := b.scratch[:w]
	for _, c := range refs {
		cells[c] = b.cols[c].Cell(int(p))
	}
	return relation.Tuple{Cells: cells}
}

// reset detaches the batch from any producer storage.
func (b *Batch) reset() { b.n, b.cols, b.sel = 0, nil, nil }

// truncate narrows the batch to its live rows [lo, hi). A dense batch
// gains an identity selection — the column windows themselves may alias
// producer storage and are never re-sliced.
func (b *Batch) truncate(lo, hi int) {
	if b.sel != nil {
		b.sel = b.sel[lo:hi]
		return
	}
	sel := b.selBuf[:0]
	for i := lo; i < hi; i++ {
		sel = append(sel, int32(i))
	}
	b.selBuf = sel
	b.sel = sel
}

// ownedCols returns the batch's owned column buffer resized to width w,
// each vector emptied for appending.
func (b *Batch) ownedCols(w int) []ColVec {
	for len(b.colBuf) < w {
		b.colBuf = append(b.colBuf, ColVec{})
	}
	cols := b.colBuf[:w]
	for i := range cols {
		cols[i].reset()
	}
	return cols
}

// setOwned publishes n dense rows from the batch's own column buffer.
func (b *Batch) setOwned(cols []ColVec, n int) {
	b.cols, b.n, b.sel = cols, n, nil
}

// batchPool recycles batch buffers across plans. Batches hold column
// buffers a kilorow long; recycling them keeps the vectorized hot path
// allocation-free once warm.
var batchPool = sync.Pool{New: func() any { return &Batch{} }}

// getBatch fetches a pooled batch with selection capacity for size rows.
func getBatch(size int) *Batch {
	if size < 1 {
		size = 1
	}
	b := batchPool.Get().(*Batch)
	if cap(b.selBuf) < size {
		b.selBuf = make([]int32, 0, size)
	}
	b.reset()
	return b
}

// putBatch returns a batch to the pool, dropping its column references so
// a pooled buffer never pins heap segments or result values.
func putBatch(b *Batch) {
	if b == nil {
		return
	}
	for i := range b.colBuf {
		b.colBuf[i].release()
	}
	clear(b.scratch)
	b.reset()
	batchPool.Put(b)
}

// BatchIterator is the pull-based batch stream the vectorized operators
// implement. NextBatch refills b — columns, selection, possibly aliasing
// storage owned by the producer and valid until the next call — and
// reports false at end of stream. A delivered batch always has at least
// one live row. Iterators holding buffers or background resources also
// implement Stopper; an exhausted or errored iterator has released its own
// resources already, and Stop is idempotent.
type BatchIterator interface {
	Schema() *schema.Schema
	NextBatch(b *Batch) (bool, error)
}

// stopIfStopper releases x's resources when it is a Stopper.
func stopIfStopper(x any) {
	if s, ok := x.(Stopper); ok {
		s.Stop()
	}
}

// ---- Batch column scan ----

// SegPrune is one sargable conjunct (column ⊗ constant) a batch scan tests
// against per-segment column min/max statistics: a segment whose value
// range cannot satisfy the conjunct is skipped without reading a single
// slot. PrunableSargs extracts them from a bound predicate.
type SegPrune struct {
	Col int // bound schema column index
	Op  CmpOp
	K   value.Value
}

// skip reports whether a segment whose column summarizes to st can be
// skipped: no value in [Min, Max] could make the comparison definitely
// true. A column with no non-null values (!st.OK) is always skippable —
// comparisons against null are never true. Stats are a conservative
// superset of the live values, so skip errs toward scanning.
func (p *SegPrune) skip(st storage.ColStats) bool {
	if !st.OK {
		return true
	}
	cmpMin := value.ComparePtr(&p.K, &st.Min)
	cmpMax := value.ComparePtr(&p.K, &st.Max)
	switch p.Op {
	case OpEq:
		return cmpMin < 0 || cmpMax > 0
	case OpNe:
		return cmpMin == 0 && cmpMax == 0
	case OpLt:
		return cmpMin <= 0 // satisfiable only when Min < K
	case OpLe:
		return cmpMin < 0
	case OpGt:
		return cmpMax >= 0 // satisfiable only when Max > K
	case OpGe:
		return cmpMax > 0
	}
	return false
}

type batchColScan struct {
	t      *storage.Table
	size   int
	nSeg   int
	cols   []int // schema column indexes to materialize
	width  int   // full schema width
	prunes []SegPrune
	prAt   []int // position in cols of each prune's column

	cs      storage.ColSeg
	hdrs    []ColVec // full-width header buffer handed to consumers
	seg     int
	pos     int // next slot offset within the loaded segment
	selPos  int // next index into cs.Sel
	loaded  bool
	done    bool
	skipped int
}

// NewBatchColScan streams a table's segments as column-vector batches of
// up to size rows, materializing only the requested columns (bound schema
// indexes) — every other vector in the delivered batch is empty. The
// vectors alias the heap's immutable column runs: zero rows are cloned,
// zero cells are copied, and a batch is valid only until the next
// NextBatch. Segments whose min/max statistics refute a prune conjunct are
// skipped whole. Consumers must only touch requested columns.
func NewBatchColScan(t *storage.Table, size int, cols []int, prunes []SegPrune) BatchIterator {
	if size < 1 {
		size = DefaultBatchSize
	}
	width := len(t.Schema().Attrs)
	// The scan owns its column list: prune columns must be materialized to
	// read their stats, so add any the caller didn't request.
	need := append([]int(nil), cols...)
	pos := make(map[int]int, len(need))
	for i, c := range need {
		pos[c] = i
	}
	prAt := make([]int, len(prunes))
	for i, p := range prunes {
		at, ok := pos[p.Col]
		if !ok {
			at = len(need)
			need = append(need, p.Col)
			pos[p.Col] = at
		}
		prAt[i] = at
	}
	return &batchColScan{t: t, size: size, nSeg: t.Segments(), cols: need, width: width,
		prunes: prunes, prAt: prAt}
}

// NewBatchTableScan streams every column of a storage table in batches of
// up to size rows — NewBatchColScan with the full column list and no
// pruning. Batches are segment-aligned and rows arrive in row-ID order.
func NewBatchTableScan(t *storage.Table, size int) BatchIterator {
	cols := make([]int, len(t.Schema().Attrs))
	for i := range cols {
		cols[i] = i
	}
	return NewBatchColScan(t, size, cols, nil)
}

func (s *batchColScan) Schema() *schema.Schema { return s.t.Schema() }

func (s *batchColScan) SizeHint() int { return s.t.Len() }

// ExtraStats reports the segment-skipping outcome for EXPLAIN ANALYZE.
func (s *batchColScan) ExtraStats() string {
	return fmt.Sprintf("segments skipped=%d of %d", s.skipped, s.nSeg)
}

// Stop drops the scan's window over the heap so an early-terminated scan
// (a filled LIMIT) releases it immediately.
func (s *batchColScan) Stop() {
	s.done = true
	s.loaded = false
	s.cs = storage.ColSeg{}
	s.hdrs = nil
}

func (s *batchColScan) pruned() bool {
	for i := range s.prunes {
		if s.prunes[i].skip(s.cs.Cols[s.prAt[i]].Stats) {
			return true
		}
	}
	return false
}

func (s *batchColScan) NextBatch(b *Batch) (bool, error) {
	if s.done {
		return false, nil
	}
	for {
		if !s.loaded {
			for {
				if s.seg >= s.nSeg || !s.t.ScanSegmentCols(s.seg, s.cols, &s.cs) {
					s.done = true
					return false, nil
				}
				s.seg++
				if !s.pruned() {
					break
				}
				s.skipped++
			}
			s.pos, s.selPos = 0, 0
			s.loaded = true
		}
		if s.pos >= s.cs.N {
			s.loaded = false
			continue
		}
		lo := s.pos
		n := s.cs.N - lo
		if n > s.size {
			n = s.size
		}
		s.pos += n
		var sel []int32
		if s.cs.Sel != nil {
			sel = b.selBuf[:0]
			for s.selPos < len(s.cs.Sel) && int(s.cs.Sel[s.selPos]) < lo+n {
				sel = append(sel, s.cs.Sel[s.selPos]-int32(lo))
				s.selPos++
			}
			b.selBuf = sel
			if len(sel) == 0 {
				continue // window fully dead
			}
		}
		if s.hdrs == nil {
			s.hdrs = make([]ColVec, s.width)
		}
		for i := range s.hdrs {
			s.hdrs[i] = ColVec{}
		}
		for p, c := range s.cols {
			r := &s.cs.Cols[p]
			v := ColVec{Vals: r.Vals[lo : lo+n]}
			if r.Tags != nil {
				v.Tags = r.Tags[lo : lo+n]
			}
			if r.Srcs != nil {
				v.Srcs = r.Srcs[lo : lo+n]
			}
			if r.Meta != nil {
				v.Meta = r.Meta[lo : lo+n]
			}
			s.hdrs[c] = v
		}
		b.cols, b.n = s.hdrs, n
		if s.cs.Sel != nil {
			b.sel = sel
		} else {
			b.sel = nil
		}
		return true, nil
	}
}

// ---- Batch rename ----

type batchRename struct {
	in  BatchIterator
	out *schema.Schema
}

// NewBatchRename renames the stream's relation, the batch counterpart of
// NewRename's relation-name case.
func NewBatchRename(in BatchIterator, relName string) BatchIterator {
	s := in.Schema().Clone()
	s.Name = relName
	return &batchRename{in: in, out: s}
}

func (r *batchRename) Schema() *schema.Schema           { return r.out }
func (r *batchRename) SizeHint() int                    { return sizeHint(r.in) }
func (r *batchRename) NextBatch(b *Batch) (bool, error) { return r.in.NextBatch(b) }
func (r *batchRename) Stop()                            { stopIfStopper(r.in) }

// ---- Batch select ----

type batchSelect struct {
	in   BatchIterator
	kern ColPred   // column kernel, when the predicate compiles to one
	pred Predicate // scalar fallback over scratch rows
	refs []int
	ctx  *EvalContext
}

// NewBatchSelect keeps the rows whose predicate is definitely true,
// refining each batch's selection vector in place — columns are not copied
// or compacted, the vector just skips the losers. When compiled and the
// predicate is an AND/OR tree of column⊗constant comparisons, it runs as a
// type-specialized column kernel: the constant's comparison is specialized
// once (value.CompareFn) and applied straight down the value vector, with
// no row assembly at all. Everything else evaluates per live row over a
// scratch row holding only the predicate's referenced columns.
func NewBatchSelect(in BatchIterator, pred Expr, ctx *EvalContext, compiled bool) (BatchIterator, error) {
	if err := pred.Bind(in.Schema()); err != nil {
		return nil, err
	}
	s := &batchSelect{in: in, ctx: ctx, refs: ReferencedCols(pred)}
	if compiled {
		if k, ok := CompileColPred(pred, len(in.Schema().Attrs)); ok {
			s.kern = k
			return s, nil
		}
		s.pred = CompilePredicate(pred)
		return s, nil
	}
	s.pred = InterpretedPredicate(pred)
	return s, nil
}

func (s *batchSelect) Schema() *schema.Schema { return s.in.Schema() }

func (s *batchSelect) Stop() { stopIfStopper(s.in) }

func (s *batchSelect) NextBatch(b *Batch) (bool, error) {
	for {
		ok, err := s.in.NextBatch(b)
		if err != nil || !ok {
			return false, err
		}
		// Refine in place: when a selection vector already exists (a select
		// upstream), the write index never passes the read index, so reusing
		// selBuf is safe.
		sel := b.selBuf[:0]
		if s.kern != nil {
			if b.sel != nil {
				for _, i := range b.sel {
					if s.kern(b.cols, i) {
						sel = append(sel, i)
					}
				}
			} else {
				for i := 0; i < b.n; i++ {
					if s.kern(b.cols, int32(i)) {
						sel = append(sel, int32(i))
					}
				}
			}
		} else {
			n := b.Len()
			for i := 0; i < n; i++ {
				p := b.phys(i)
				keep, err := s.pred(b.scratchRowAt(p, s.refs), s.ctx)
				if err != nil {
					return false, err
				}
				if keep {
					sel = append(sel, p)
				}
			}
		}
		b.selBuf = sel
		if len(sel) > 0 {
			b.sel = sel
			return true, nil
		}
	}
}

// ---- Batch project ----

type batchProject struct {
	in        BatchIterator
	proj      *projection
	ctx       *EvalContext
	size      int
	allPlain  bool
	unionRefs []int
	hdrs      []ColVec
	buf       *Batch // pooled input batch, released on exhaustion/Stop
	stopped   bool
}

// NewBatchProject projects batches through the same bound projection core
// as NewProject. A projection of plain column references is free: the
// output batch just re-points at the input's column vectors in output
// order, keeping the input's selection. Projections with computed items
// materialize dense output columns, deriving provenance cells exactly like
// the scalar operator.
func NewBatchProject(in BatchIterator, items []ProjectItem, ctx *EvalContext, size int, compiled bool) (BatchIterator, error) {
	proj, err := bindProjection(in.Schema(), items, compiled)
	if err != nil {
		return nil, err
	}
	if size < 1 {
		size = DefaultBatchSize
	}
	p := &batchProject{in: in, proj: proj, ctx: ctx, size: size, allPlain: true}
	seen := map[int]bool{}
	for i, c := range proj.cols {
		if c >= 0 {
			if !seen[c] {
				seen[c] = true
				p.unionRefs = append(p.unionRefs, c)
			}
			continue
		}
		p.allPlain = false
		for _, r := range proj.refs[i] {
			if !seen[r] {
				seen[r] = true
				p.unionRefs = append(p.unionRefs, r)
			}
		}
	}
	return p, nil
}

func (p *batchProject) Schema() *schema.Schema { return p.proj.out }

func (p *batchProject) SizeHint() int { return sizeHint(p.in) }

// Stop releases the input batch back to the pool and stops the producer.
func (p *batchProject) Stop() {
	p.stopped = true
	if p.buf != nil {
		putBatch(p.buf)
		p.buf = nil
	}
	stopIfStopper(p.in)
}

func (p *batchProject) NextBatch(b *Batch) (bool, error) {
	if p.stopped {
		return false, nil
	}
	if p.allPlain {
		// A plain-reference projection is free: drive the consumer's own
		// batch through the input and re-point the headers in output order.
		// No pooled project buffer is involved, so the delivered vectors
		// alias only what the producer put in b (heap runs, b's own
		// buffers) — a downstream Stop may release this operator while the
		// consumer is still reading the batch.
		ok, err := p.in.NextBatch(b)
		if err != nil || !ok {
			p.Stop()
			return false, err
		}
		if p.hdrs == nil {
			p.hdrs = make([]ColVec, len(p.proj.cols))
		}
		for i, c := range p.proj.cols {
			p.hdrs[i] = b.cols[c]
		}
		b.cols = p.hdrs
		return true, nil
	}
	if p.buf == nil {
		p.buf = getBatch(p.size)
	}
	ok, err := p.in.NextBatch(p.buf)
	if err != nil || !ok {
		p.Stop()
		return false, err
	}
	n := p.buf.Len()
	out := b.ownedCols(len(p.proj.items))
	for i := 0; i < n; i++ {
		pp := p.buf.phys(i)
		var t relation.Tuple
		if len(p.unionRefs) > 0 {
			t = p.buf.scratchRowAt(pp, p.unionRefs)
		}
		for j := range p.proj.items {
			if col := p.proj.cols[j]; col >= 0 {
				out[j].appendCell(p.buf.cols[col].Cell(int(pp)))
				continue
			}
			v, err := p.proj.evals[j](t, p.ctx)
			if err != nil {
				p.Stop()
				return false, err
			}
			out[j].appendCell(deriveCell(v, t, p.proj.refs[j]))
		}
	}
	b.setOwned(out, n)
	return true, nil
}

// ---- Batch limit ----

type batchLimit struct {
	in      BatchIterator
	limit   int
	offset  int
	emitted int
	skipped int
	done    bool
}

// NewBatchLimit emits at most limit rows after skipping offset (negative
// limit means unlimited), trimming batches at the boundaries. Once the
// limit is reached the producer is stopped immediately, so upstream batch
// buffers are released before the final batch is even consumed.
func NewBatchLimit(in BatchIterator, limit, offset int) BatchIterator {
	return &batchLimit{in: in, limit: limit, offset: offset}
}

func (l *batchLimit) Schema() *schema.Schema { return l.in.Schema() }

func (l *batchLimit) SizeHint() int {
	hint := sizeHint(l.in)
	if l.limit >= 0 && (hint < 0 || l.limit < hint) {
		return l.limit
	}
	return hint
}

func (l *batchLimit) Stop() {
	l.done = true
	stopIfStopper(l.in)
}

func (l *batchLimit) NextBatch(b *Batch) (bool, error) {
	if l.done {
		return false, nil
	}
	for {
		ok, err := l.in.NextBatch(b)
		if err != nil || !ok {
			l.Stop()
			return false, err
		}
		n := b.Len()
		if l.skipped < l.offset {
			skip := l.offset - l.skipped
			if skip >= n {
				l.skipped += n
				continue
			}
			l.skipped = l.offset
			b.truncate(skip, n)
			n -= skip
		}
		if l.limit >= 0 {
			remain := l.limit - l.emitted
			if remain <= 0 {
				l.Stop()
				return false, nil
			}
			if n > remain {
				b.truncate(0, remain)
				n = remain
			}
		}
		l.emitted += n
		if l.limit >= 0 && l.emitted >= l.limit {
			// Stop eagerly: the delivered batch stays valid (its vectors
			// alias heap column runs or the consumer's own buffer, never the
			// producer's pooled storage).
			l.Stop()
		}
		return true, nil
	}
}

// ---- Batch aggregate sink ----

// NewBatchAggregate computes global (ungrouped) aggregates over a batch
// stream, draining it eagerly like NewAggregate and yielding the single
// result row — same output schema, same provenance folding, same
// empty-input behavior (one row). COUNT(*)-only aggregations never touch
// the columns at all: each batch contributes its length, which is the
// vectorized tier's fastest path. compiled selects Compile for the
// aggregate arguments. Grouped aggregation lives in aggbatch.go.
func NewBatchAggregate(in BatchIterator, aggs []AggSpec, ctx *EvalContext, size int, compiled bool) (Iterator, error) {
	inS := in.Schema()
	if err := bindAggSpecs(inS, aggs); err != nil {
		return nil, err
	}
	outS, err := aggOutputSchema(inS, nil, aggs)
	if err != nil {
		return nil, err
	}

	states := newAggStates(len(aggs))
	argRefs := make([][]int, len(aggs))
	evals := make([]Compiled, len(aggs))
	var unionRefs []int
	seen := map[int]bool{}
	countOnly := true
	for i := range aggs {
		if aggs[i].Arg == nil {
			continue
		}
		countOnly = false
		argRefs[i] = ReferencedCols(aggs[i].Arg)
		for _, r := range argRefs[i] {
			if !seen[r] {
				seen[r] = true
				unionRefs = append(unionRefs, r)
			}
		}
		if compiled {
			evals[i] = Compile(aggs[i].Arg)
		} else {
			evals[i] = aggs[i].Arg.Eval
		}
	}

	if size < 1 {
		size = DefaultBatchSize
	}
	b := getBatch(size)
	defer func() {
		putBatch(b)
		stopIfStopper(in)
	}()
	for {
		ok, err := in.NextBatch(b)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		n := b.Len()
		if countOnly {
			for i := range states {
				states[i].count += int64(n)
			}
			continue
		}
		for r := 0; r < n; r++ {
			t := b.scratchRowAt(b.phys(r), unionRefs)
			for i := range aggs {
				var v value.Value
				if aggs[i].Arg != nil {
					var err error
					v, err = evals[i](t, ctx)
					if err != nil {
						return nil, err
					}
				}
				states[i].foldRow(&aggs[i], v, argRefs[i], t)
			}
		}
	}
	cells := make([]relation.Cell, 0, len(aggs))
	for i, a := range aggs {
		c := states[i].cell
		c.V = states[i].finish(a.Fn)
		cells = append(cells, c)
	}
	return &aggregateOp{out: outS, rows: []relation.Tuple{{Cells: cells}}}, nil
}

// ---- Adapters ----

type toBatch struct {
	in   Iterator
	size int
	done bool
}

// NewToBatch adapts a row iterator into a batch stream, transposing up to
// size rows per call into the consumer's column buffer. It is how
// row-producing sources the batch tier has no native port for — notably
// the parallel scan's ordered merge — compose with batch operators.
func NewToBatch(in Iterator, size int) BatchIterator {
	if size < 1 {
		size = DefaultBatchSize
	}
	return &toBatch{in: in, size: size}
}

func (a *toBatch) Schema() *schema.Schema { return a.in.Schema() }

func (a *toBatch) SizeHint() int { return sizeHint(a.in) }

func (a *toBatch) Stop() {
	a.done = true
	stopIfStopper(a.in)
}

func (a *toBatch) NextBatch(b *Batch) (bool, error) {
	if a.done {
		return false, nil
	}
	cols := b.ownedCols(len(a.in.Schema().Attrs))
	n := 0
	for n < a.size {
		t, ok, err := a.in.Next()
		if err != nil {
			a.Stop()
			return false, err
		}
		if !ok {
			a.done = true
			stopIfStopper(a.in)
			break
		}
		for j := range cols {
			cols[j].appendCell(t.Cells[j])
		}
		n++
	}
	if n == 0 {
		return false, nil
	}
	b.setOwned(cols, n)
	return true, nil
}

type fromBatch struct {
	in   BatchIterator
	size int
	buf  *Batch
	pos  int
	done bool
}

// NewFromBatch adapts a batch stream back into a row iterator, so scalar
// operators (sorts, joins, distinct, Collect) consume vectorized pipelines
// unchanged. Each delivered row is materialized with a fresh cell slice —
// rows escape the batch's lifetime. It owns one pooled batch, released
// deterministically when the stream ends or Stop is called.
func NewFromBatch(in BatchIterator, size int) Iterator {
	if size < 1 {
		size = DefaultBatchSize
	}
	return &fromBatch{in: in, size: size}
}

func (f *fromBatch) Schema() *schema.Schema { return f.in.Schema() }

func (f *fromBatch) SizeHint() int { return sizeHint(f.in) }

// Stop implements Stopper: releases the adapter's batch and stops the
// batch pipeline beneath it (which releases its own buffers and any scan
// workers). plan teardown calls it via plan.release.
func (f *fromBatch) Stop() {
	f.done = true
	if f.buf != nil {
		putBatch(f.buf)
		f.buf = nil
	}
	stopIfStopper(f.in)
}

func (f *fromBatch) Next() (relation.Tuple, bool, error) {
	if f.done {
		return relation.Tuple{}, false, nil
	}
	if f.buf == nil {
		f.buf = getBatch(f.size)
	}
	for f.pos >= f.buf.Len() {
		ok, err := f.in.NextBatch(f.buf)
		if err != nil || !ok {
			f.Stop()
			return relation.Tuple{}, false, err
		}
		f.pos = 0
	}
	t := f.buf.Row(f.pos)
	f.pos++
	return t, true, nil
}
