package algebra

import (
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
)

// OpStats accumulates the actuals for one operator in an instrumented plan:
// rows and batches produced, and wall time spent inside the operator's
// subtree (inclusive — the time covers the operator and everything below
// it, like EXPLAIN ANALYZE's "actual time" in other engines). The fields
// are plain integers written by the single goroutine that drives the
// iterator; the struct allocates nothing per row.
//
// Stats collection is opt-in: plans built without ANALYZE contain no
// instrument wrappers and pay zero cost.
type OpStats struct {
	// Rows is the number of tuples the operator produced.
	Rows int64
	// Batches is the number of non-empty batches produced (batch tier
	// only; zero for Volcano operators).
	Batches int64
	// Nanos is the cumulative wall time spent inside Next/NextBatch calls
	// on this operator, including its children (inclusive time).
	Nanos int64
	// Extra carries operator-specific detail (e.g. parallel-scan worker
	// occupancy), captured when the plan is released.
	Extra string
}

// Time returns the inclusive wall time as a duration.
func (s *OpStats) Time() time.Duration { return time.Duration(s.Nanos) }

// ExtraStats lets an operator expose operator-specific actuals (beyond
// rows/time) to EXPLAIN ANALYZE. The parallel scan implements it to report
// per-worker segment occupancy.
type ExtraStats interface {
	ExtraStats() string
}

// instrumentIt wraps a Volcano iterator, counting rows and inclusive time.
type instrumentIt struct {
	in Iterator
	st *OpStats
}

// NewInstrument wraps it so every Next records into st. The wrapper
// forwards SizeHint and Stop to the wrapped iterator so instrumented plans
// keep the same sizing and resource-release behavior.
func NewInstrument(it Iterator, st *OpStats) Iterator {
	return &instrumentIt{in: it, st: st}
}

func (i *instrumentIt) Schema() *schema.Schema { return i.in.Schema() }

func (i *instrumentIt) SizeHint() int { return sizeHint(i.in) }

func (i *instrumentIt) Next() (relation.Tuple, bool, error) {
	t0 := time.Now()
	t, ok, err := i.in.Next()
	i.st.Nanos += int64(time.Since(t0))
	if ok && err == nil {
		i.st.Rows++
	}
	return t, ok, err
}

// Stop forwards to the wrapped iterator and captures its extra stats.
func (i *instrumentIt) Stop() {
	i.captureExtra()
	stopIfStopper(i.in)
}

func (i *instrumentIt) captureExtra() {
	if ex, ok := i.in.(ExtraStats); ok {
		i.st.Extra = ex.ExtraStats()
	}
}

// ExtraStats forwards the wrapped operator's extra stats so stacked
// wrappers do not hide them.
func (i *instrumentIt) ExtraStats() string {
	if ex, ok := i.in.(ExtraStats); ok {
		return ex.ExtraStats()
	}
	return ""
}

// instrumentBatch wraps a batch iterator, counting batches, rows and
// inclusive time.
type instrumentBatch struct {
	in BatchIterator
	st *OpStats
}

// NewBatchInstrument wraps bit so every NextBatch records into st.
func NewBatchInstrument(bit BatchIterator, st *OpStats) BatchIterator {
	return &instrumentBatch{in: bit, st: st}
}

func (i *instrumentBatch) Schema() *schema.Schema { return i.in.Schema() }

func (i *instrumentBatch) NextBatch(b *Batch) (bool, error) {
	t0 := time.Now()
	ok, err := i.in.NextBatch(b)
	i.st.Nanos += int64(time.Since(t0))
	if ok && err == nil {
		i.st.Batches++
		i.st.Rows += int64(b.Len())
	}
	return ok, err
}

// Stop forwards to the wrapped iterator and captures its extra stats.
func (i *instrumentBatch) Stop() {
	if ex, ok := i.in.(ExtraStats); ok {
		i.st.Extra = ex.ExtraStats()
	}
	stopIfStopper(i.in)
}

// ExtraStats forwards the wrapped operator's extra stats.
func (i *instrumentBatch) ExtraStats() string {
	if ex, ok := i.in.(ExtraStats); ok {
		return ex.ExtraStats()
	}
	return ""
}
