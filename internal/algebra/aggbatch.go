package algebra

import (
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/value"
)

// NewBatchGroupedAggregate groups a batch stream by the groupBy
// expressions and computes the aggregates per group — the batch-native
// counterpart of NewAggregate's grouped case, with identical output:
// same schema (aggOutputSchema), same key encoding and group order
// (sorted key literals), same first-seen key cells and provenance
// folding. Plain-column group keys and aggregate arguments read straight
// off the column vectors; computed expressions evaluate over a scratch
// row holding only their referenced columns. The input is drained
// eagerly in the constructor; compiled selects compiled evaluation.
func NewBatchGroupedAggregate(in BatchIterator, groupBy []Expr, aggs []AggSpec, ctx *EvalContext, size int, compiled bool) (Iterator, error) {
	inS := in.Schema()
	for _, g := range groupBy {
		if err := g.Bind(inS); err != nil {
			return nil, err
		}
	}
	if err := bindAggSpecs(inS, aggs); err != nil {
		return nil, err
	}
	outS, err := aggOutputSchema(inS, groupBy, aggs)
	if err != nil {
		return nil, err
	}

	var unionRefs []int
	seen := map[int]bool{}
	addRefs := func(refs []int) {
		for _, r := range refs {
			if !seen[r] {
				seen[r] = true
				unionRefs = append(unionRefs, r)
			}
		}
	}
	keyIdx := make([]int, len(groupBy))
	keyEvals := make([]Compiled, len(groupBy))
	keyRefs := make([][]int, len(groupBy))
	for i, g := range groupBy {
		keyIdx[i] = -1
		if cr, ok := g.(*ColRef); ok {
			keyIdx[i] = cr.idx
			continue
		}
		keyRefs[i] = ReferencedCols(g)
		addRefs(keyRefs[i])
		if compiled {
			keyEvals[i] = Compile(g)
		} else {
			keyEvals[i] = g.Eval
		}
	}
	argRefs := make([][]int, len(aggs))
	evals := make([]Compiled, len(aggs))
	for i := range aggs {
		if aggs[i].Arg == nil {
			continue
		}
		argRefs[i] = ReferencedCols(aggs[i].Arg)
		addRefs(argRefs[i])
		if compiled {
			evals[i] = Compile(aggs[i].Arg)
		} else {
			evals[i] = aggs[i].Arg.Eval
		}
	}

	type group struct {
		keyCells []relation.Cell
		states   []aggState
	}
	groups := make(map[string]*group)
	var order []string

	if size < 1 {
		size = DefaultBatchSize
	}
	b := getBatch(size)
	defer func() {
		putBatch(b)
		stopIfStopper(in)
	}()
	keyVals := make([]value.Value, len(groupBy))
	var kb strings.Builder
	for {
		ok, err := in.NextBatch(b)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		n := b.Len()
		for r := 0; r < n; r++ {
			p := b.phys(r)
			var t relation.Tuple
			if len(unionRefs) > 0 {
				t = b.scratchRowAt(p, unionRefs)
			}
			kb.Reset()
			for i := range groupBy {
				var v value.Value
				if keyIdx[i] >= 0 {
					v = b.cols[keyIdx[i]].Vals[p]
				} else {
					var err error
					v, err = keyEvals[i](t, ctx)
					if err != nil {
						return nil, err
					}
				}
				keyVals[i] = v
				if i > 0 {
					kb.WriteByte(0)
				}
				kb.WriteString(v.Literal())
			}
			k := kb.String()
			gr, ok := groups[k]
			if !ok {
				keyCells := make([]relation.Cell, len(groupBy))
				for i := range groupBy {
					if keyIdx[i] >= 0 {
						keyCells[i] = b.cols[keyIdx[i]].Cell(int(p))
					} else {
						keyCells[i] = deriveCell(keyVals[i], t, keyRefs[i])
					}
				}
				gr = &group{keyCells: keyCells, states: newAggStates(len(aggs))}
				groups[k] = gr
				order = append(order, k)
			}
			for i := range aggs {
				var v value.Value
				if aggs[i].Arg != nil {
					var err error
					v, err = evals[i](t, ctx)
					if err != nil {
						return nil, err
					}
				}
				gr.states[i].foldRow(&aggs[i], v, argRefs[i], t)
			}
		}
	}
	if len(groupBy) == 0 && len(order) == 0 {
		// Global aggregate over an empty input still yields one row.
		groups[""] = &group{states: newAggStates(len(aggs))}
		order = append(order, "")
	}
	sort.Strings(order)
	rows := make([]relation.Tuple, 0, len(order))
	for _, k := range order {
		gr := groups[k]
		cells := append([]relation.Cell(nil), gr.keyCells...)
		for i, a := range aggs {
			c := gr.states[i].cell
			c.V = gr.states[i].finish(a.Fn)
			cells = append(cells, c)
		}
		rows = append(rows, relation.Tuple{Cells: cells})
	}
	return &aggregateOp{out: outS, rows: rows}, nil
}
