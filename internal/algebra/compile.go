package algebra

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/value"
)

// Compiled is a specialized evaluator for one bound expression: the whole
// tree flattened into a chain of closures, so evaluating a row costs a few
// direct calls instead of an interface-dispatched AST walk per node. A
// Compiled closure is read-only after construction and safe to share across
// goroutines.
type Compiled func(relation.Tuple, *EvalContext) (value.Value, error)

// Predicate is a compiled boolean filter: it reports whether the expression
// is definitely true for the row (Kleene semantics — null and non-bool are
// not true), mirroring Truth.
type Predicate func(relation.Tuple, *EvalContext) (bool, error)

// Compile specializes a bound expression into a Compiled closure chain.
// Cmp/Logic/Arith/ColRef/Const spines (the predicate hot path) compile to
// flat closures with the operator selected once, at compile time;
// Const⊗Const subtrees are folded to constants. Node kinds outside the hot
// set — SrcContains, MetaRef, IndRef, Call and friends — fall back to their
// interpreted Eval, so Compile never changes semantics, only dispatch cost.
// The expression must already be bound (Bind) and must not be mutated
// afterwards.
func Compile(e Expr) Compiled {
	switch v := e.(type) {
	case *Const:
		c := v.V
		return func(relation.Tuple, *EvalContext) (value.Value, error) { return c, nil }
	case *ColRef:
		return compileColRef(v)
	case *Cmp:
		return compileCmp(v)
	case *Logic:
		return compileLogic(v)
	case *Not:
		f := Compile(v.E)
		return func(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
			x, err := f(row, ctx)
			if err != nil || x.IsNull() {
				return value.Null, err
			}
			return value.Bool(!x.AsBool()), nil
		}
	case *Arith:
		return compileArith(v)
	case *Neg:
		f := Compile(v.E)
		return func(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
			x, err := f(row, ctx)
			if err != nil {
				return value.Null, err
			}
			return value.Neg(x)
		}
	case *IsNull:
		f := Compile(v.E)
		negate := v.Negate
		return func(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
			x, err := f(row, ctx)
			if err != nil {
				return value.Null, err
			}
			return value.Bool(x.IsNull() != negate), nil
		}
	case *InList:
		return compileInList(v)
	case *Like:
		f := Compile(v.E)
		pattern, negate := v.Pattern, v.Negate
		return func(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
			x, err := f(row, ctx)
			if err != nil || x.IsNull() {
				return value.Null, err
			}
			if x.Kind() != value.KindString {
				return v.Eval(row, ctx) // reuse the interpreted error path
			}
			return value.Bool(likeMatch(pattern, x.AsString()) != negate), nil
		}
	}
	// Long tail (SrcContains, MetaRef, IndRef, Call, unknown nodes): the
	// interpreted evaluator, as a method value.
	return e.Eval
}

// CompilePredicate compiles a bound boolean expression into a Predicate.
// Conjunctions and disjunctions of ref-versus-constant comparisons — the
// sarg shapes that dominate WHERE and WITH QUALITY clauses — compile to
// direct boolean closures with no Value boxing at all; everything else
// evaluates through Compile and tests the result.
func CompilePredicate(e Expr) Predicate {
	if p, ok := compileBoolPred(e); ok {
		return p
	}
	f := Compile(e)
	return func(row relation.Tuple, ctx *EvalContext) (bool, error) {
		v, err := f(row, ctx)
		if err != nil {
			return false, err
		}
		return !v.IsNull() && v.Kind() == value.KindBool && v.AsBool(), nil
	}
}

// compileBoolPred builds a two-valued evaluator for predicate trees of
// AND/OR over ref⊗const comparisons. The collapse from Kleene to boolean
// logic is sound here: at every level of such a tree, "definitely true"
// composes through AND/OR exactly as && and || do (null behaves as false),
// and the leaves cannot error after a successful Bind — the only error
// path is the defensive arity guard — so truth-level short-circuiting
// never skips an error the interpreted walk would have surfaced.
func compileBoolPred(e Expr) (Predicate, bool) {
	switch v := e.(type) {
	case *Logic:
		l, lok := compileBoolPred(v.L)
		r, rok := compileBoolPred(v.R)
		if !lok || !rok {
			return nil, false
		}
		if v.Op == OpAnd {
			return func(row relation.Tuple, ctx *EvalContext) (bool, error) {
				b, err := l(row, ctx)
				if err != nil || !b {
					return false, err
				}
				return r(row, ctx)
			}, true
		}
		return func(row relation.Tuple, ctx *EvalContext) (bool, error) {
			b, err := l(row, ctx)
			if err != nil || b {
				return b, err
			}
			return r(row, ctx)
		}, true
	case *Cmp:
		rc, ok := extractRefConst(v)
		if !ok {
			return nil, false
		}
		if rc.k.IsNull() {
			// ref ⊗ null is null: never definitely true.
			return func(relation.Tuple, *EvalContext) (bool, error) { return false, nil }, true
		}
		if rc.indicator == "" {
			return func(row relation.Tuple, _ *EvalContext) (bool, error) {
				if rc.idx < 0 || rc.idx >= len(row.Cells) {
					return false, rc.boundErr()
				}
				cv := &row.Cells[rc.idx].V
				if cv.IsNull() {
					return false, nil
				}
				return rc.test(rc.cmp(cv)), nil
			}, true
		}
		return func(row relation.Tuple, _ *EvalContext) (bool, error) {
			if rc.idx < 0 || rc.idx >= len(row.Cells) {
				return false, rc.boundErr()
			}
			got, ok := row.Cells[rc.idx].Tags.Get(rc.indicator)
			if !ok || got.IsNull() {
				return false, nil
			}
			return rc.test(rc.cmp(&got)), nil
		}, true
	}
	return nil, false
}

// refConst is the decomposed form of Cmp(ref ⊗ const): a cell address (and
// optional indicator), the constant, and the comparison test. It carries no
// mutable state, so the closures built over it are safe to share across
// parallel scan workers.
type refConst struct {
	idx       int
	name      string // for the defensive not-bound error
	indicator string // "" compares the application value
	k         value.Value
	test      func(int) bool
	flip      bool // constant was the left operand
}

func (rc *refConst) boundErr() error {
	return fmt.Errorf("algebra: %s not bound", rc.name)
}

// cmp orders the row operand against the constant through pointers — the
// Value struct copy is what dominates a tight comparison loop.
func (rc *refConst) cmp(v *value.Value) int {
	c := value.ComparePtr(v, &rc.k)
	if rc.flip {
		return -c
	}
	return c
}

// extractRefConst recognizes Cmp(ColRef|IndRef, Const) in either operand
// order.
func extractRefConst(c *Cmp) (*refConst, bool) {
	build := func(ref Expr, k *Const, flip bool) (*refConst, bool) {
		switch r := ref.(type) {
		case *ColRef:
			return &refConst{idx: r.idx, name: r.Name, k: k.V, test: cmpTests[c.Op], flip: flip}, true
		case *IndRef:
			return &refConst{idx: r.idx, name: r.Col + "@" + r.Indicator, indicator: r.Indicator,
				k: k.V, test: cmpTests[c.Op], flip: flip}, true
		}
		return nil, false
	}
	if k, ok := c.R.(*Const); ok {
		return build(c.L, k, false)
	}
	if k, ok := c.L.(*Const); ok {
		return build(c.R, k, true)
	}
	return nil, false
}

// ColPred is a compiled column kernel: it tests one physical slot of a
// batch's column vectors without assembling a row. Kernels are built only
// for predicate shapes that cannot error at runtime (CompileColPred
// rejects unbound references at compile time), so the signature has no
// error return — which is what keeps the per-slot loop branch-light.
type ColPred func(cols []ColVec, off int32) bool

// CompileColPred builds a column kernel for an AND/OR tree of ref⊗const
// comparisons over a batch of the given width — the same shapes
// compileBoolPred handles, minus anything that could error per row. The
// constant side of each comparison is specialized once via value.CompareFn,
// so the slot loop runs a direct comparison on the already-loaded value
// instead of a generic ComparePtr dispatch. Not ok means the caller should
// fall back to scalar predicate evaluation over scratch rows.
func CompileColPred(e Expr, width int) (ColPred, bool) {
	switch v := e.(type) {
	case *Logic:
		l, lok := CompileColPred(v.L, width)
		r, rok := CompileColPred(v.R, width)
		if !lok || !rok {
			return nil, false
		}
		if v.Op == OpAnd {
			return func(cols []ColVec, off int32) bool {
				return l(cols, off) && r(cols, off)
			}, true
		}
		return func(cols []ColVec, off int32) bool {
			return l(cols, off) || r(cols, off)
		}, true
	case *Cmp:
		rc, ok := extractRefConst(v)
		if !ok {
			return nil, false
		}
		if rc.idx < 0 || rc.idx >= width {
			return nil, false // unbound: let the scalar path surface the error
		}
		if rc.k.IsNull() {
			// ref ⊗ null is null: never definitely true.
			return func([]ColVec, int32) bool { return false }, true
		}
		cmp := value.CompareFn(rc.k)
		test, flip, idx := rc.test, rc.flip, rc.idx
		if rc.indicator == "" {
			return func(cols []ColVec, off int32) bool {
				cv := &cols[idx].Vals[off]
				if cv.IsNull() {
					return false
				}
				c := cmp(cv)
				if flip {
					c = -c
				}
				return test(c)
			}, true
		}
		ind := rc.indicator
		return func(cols []ColVec, off int32) bool {
			tags := cols[idx].Tags
			if int(off) >= len(tags) {
				return false
			}
			got, ok := tags[off].Get(ind)
			if !ok || got.IsNull() {
				return false
			}
			c := cmp(&got)
			if flip {
				c = -c
			}
			return test(c)
		}, true
	}
	return nil, false
}

// PrunableSargs extracts the segment-prunable conjuncts of a bound
// predicate: comparisons between a plain column and a non-null constant
// reachable through top-level ANDs. Each one is a necessary condition for
// the whole predicate, so a segment refuting any of them by min/max cannot
// contribute a row. Indicator comparisons are skipped — column statistics
// summarize application values, not tags.
func PrunableSargs(e Expr) []SegPrune {
	var out []SegPrune
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Logic:
			if v.Op != OpAnd {
				return // a disjunct alone is not necessary
			}
			walk(v.L)
			walk(v.R)
		case *Cmp:
			rc, ok := extractRefConst(v)
			if !ok || rc.indicator != "" || rc.idx < 0 || rc.k.IsNull() {
				return
			}
			op := v.Op
			if rc.flip {
				op = mirrorCmp(op)
			}
			out = append(out, SegPrune{Col: rc.idx, Op: op, K: rc.k})
		}
	}
	walk(e)
	return out
}

// mirrorCmp rewrites const ⊗ col as col ⊗ const.
func mirrorCmp(op CmpOp) CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	case OpEq, OpNe:
		return op // symmetric
	}
	return op
}

// InterpretedPredicate wraps the tree-walking Truth as a Predicate, for A/B
// comparison against CompilePredicate.
func InterpretedPredicate(e Expr) Predicate {
	return func(row relation.Tuple, ctx *EvalContext) (bool, error) {
		return Truth(e, row, ctx)
	}
}

func compileColRef(c *ColRef) Compiled {
	idx := c.idx
	return func(row relation.Tuple, _ *EvalContext) (value.Value, error) {
		if idx < 0 || idx >= len(row.Cells) {
			return c.Eval(row, nil) // interpreted not-bound error path
		}
		return row.Cells[idx].V, nil
	}
}

// foldConst evaluates a row-independent subtree once; not ok when the
// evaluation errors (the node is kept, so the error still surfaces per row
// at execution time, exactly as interpreted evaluation would).
func foldConst(e Expr) (value.Value, bool) {
	v, err := e.Eval(relation.Tuple{}, &EvalContext{})
	if err != nil {
		return value.Null, false
	}
	return v, true
}

func isConst(e Expr) bool { _, ok := e.(*Const); return ok }

func compileCmp(c *Cmp) Compiled {
	if isConst(c.L) && isConst(c.R) {
		if v, ok := foldConst(c); ok {
			return func(relation.Tuple, *EvalContext) (value.Value, error) { return v, nil }
		}
	}
	if rc, ok := extractRefConst(c); ok {
		if rc.k.IsNull() {
			return func(relation.Tuple, *EvalContext) (value.Value, error) { return value.Null, nil }
		}
		if rc.indicator == "" {
			return func(row relation.Tuple, _ *EvalContext) (value.Value, error) {
				if rc.idx < 0 || rc.idx >= len(row.Cells) {
					return value.Null, rc.boundErr()
				}
				cv := &row.Cells[rc.idx].V
				if cv.IsNull() {
					return value.Null, nil
				}
				return value.Bool(rc.test(rc.cmp(cv))), nil
			}
		}
		return func(row relation.Tuple, _ *EvalContext) (value.Value, error) {
			if rc.idx < 0 || rc.idx >= len(row.Cells) {
				return value.Null, rc.boundErr()
			}
			got, ok := row.Cells[rc.idx].Tags.Get(rc.indicator)
			if !ok || got.IsNull() {
				return value.Null, nil
			}
			return value.Bool(rc.test(rc.cmp(&got))), nil
		}
	}
	l, r := Compile(c.L), Compile(c.R)
	test := cmpTests[c.Op]
	return func(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
		lv, err := l(row, ctx)
		if err != nil {
			return value.Null, err
		}
		rv, err := r(row, ctx)
		if err != nil {
			return value.Null, err
		}
		if lv.IsNull() || rv.IsNull() {
			return value.Null, nil
		}
		return value.Bool(test(value.ComparePtr(&lv, &rv))), nil
	}
}

// cmpTests maps a CmpOp to its test over value.Compare's result, selected
// once at compile time instead of switched per row.
var cmpTests = [...]func(int) bool{
	OpEq: func(c int) bool { return c == 0 },
	OpNe: func(c int) bool { return c != 0 },
	OpLt: func(c int) bool { return c < 0 },
	OpLe: func(c int) bool { return c <= 0 },
	OpGt: func(c int) bool { return c > 0 },
	OpGe: func(c int) bool { return c >= 0 },
}

func compileLogic(lg *Logic) Compiled {
	if isConst(lg.L) && isConst(lg.R) {
		if v, ok := foldConst(lg); ok {
			return func(relation.Tuple, *EvalContext) (value.Value, error) { return v, nil }
		}
	}
	l, r := Compile(lg.L), Compile(lg.R)
	if lg.Op == OpAnd {
		return func(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
			lv, err := l(row, ctx)
			if err != nil {
				return value.Null, err
			}
			if !lv.IsNull() && lv.Kind() == value.KindBool && !lv.AsBool() {
				return value.Bool(false), nil
			}
			rv, err := r(row, ctx)
			if err != nil {
				return value.Null, err
			}
			lb, lNull := boolOf(lv)
			rb, rNull := boolOf(rv)
			switch {
			case !lNull && !lb, !rNull && !rb:
				return value.Bool(false), nil
			case lNull || rNull:
				return value.Null, nil
			default:
				return value.Bool(true), nil
			}
		}
	}
	return func(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
		lv, err := l(row, ctx)
		if err != nil {
			return value.Null, err
		}
		if !lv.IsNull() && lv.Kind() == value.KindBool && lv.AsBool() {
			return value.Bool(true), nil
		}
		rv, err := r(row, ctx)
		if err != nil {
			return value.Null, err
		}
		lb, lNull := boolOf(lv)
		rb, rNull := boolOf(rv)
		switch {
		case !lNull && lb, !rNull && rb:
			return value.Bool(true), nil
		case lNull || rNull:
			return value.Null, nil
		default:
			return value.Bool(false), nil
		}
	}
}

func compileArith(a *Arith) Compiled {
	if isConst(a.L) && isConst(a.R) {
		if v, ok := foldConst(a); ok {
			return func(relation.Tuple, *EvalContext) (value.Value, error) { return v, nil }
		}
	}
	l, r := Compile(a.L), Compile(a.R)
	op := arithFns[a.Op]
	return func(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
		lv, err := l(row, ctx)
		if err != nil {
			return value.Null, err
		}
		rv, err := r(row, ctx)
		if err != nil {
			return value.Null, err
		}
		return op(lv, rv)
	}
}

var arithFns = [...]func(l, r value.Value) (value.Value, error){
	OpAdd: value.Add,
	OpSub: value.Sub,
	OpMul: value.Mul,
	OpDiv: value.Div,
}

func compileInList(in *InList) Compiled {
	e := Compile(in.E)
	list := make([]Compiled, len(in.List))
	for i, x := range in.List {
		list[i] = Compile(x)
	}
	negate := in.Negate
	return func(row relation.Tuple, ctx *EvalContext) (value.Value, error) {
		v, err := e(row, ctx)
		if err != nil || v.IsNull() {
			return value.Null, err
		}
		sawNull := false
		for _, f := range list {
			ev, err := f(row, ctx)
			if err != nil {
				return value.Null, err
			}
			if ev.IsNull() {
				sawNull = true
				continue
			}
			if value.EqualPtr(&v, &ev) {
				return value.Bool(!negate), nil
			}
		}
		if sawNull {
			return value.Null, nil
		}
		return value.Bool(negate), nil
	}
}

// ---- Bind-time simplification ----

// Simplify rewrites an expression into an equivalent, usually smaller one:
// row-independent subtrees of the pure operators (Cmp, Logic, Arith, Not,
// Neg, IsNull, InList, Like over constants) fold to constants, and
// determined Kleene identities collapse — x AND false is false, x AND true
// is x, x OR true is true, x OR false is x. A folding step whose evaluation
// errors (1/0) is left in place so the error still surfaces at execution
// time. Calls are never folded: NOW() is row-independent but
// statement-dependent. Simplify may rewrite nodes in place; callers own the
// tree (planners work on clones).
func Simplify(e Expr) Expr {
	switch v := e.(type) {
	case *Cmp:
		v.L, v.R = Simplify(v.L), Simplify(v.R)
		return foldIfConst(v, v.L, v.R)
	case *Logic:
		v.L, v.R = Simplify(v.L), Simplify(v.R)
		if out, ok := simplifyLogic(v); ok {
			return out
		}
		return v
	case *Not:
		v.E = Simplify(v.E)
		return foldIfConst(v, v.E)
	case *Neg:
		v.E = Simplify(v.E)
		return foldIfConst(v, v.E)
	case *IsNull:
		v.E = Simplify(v.E)
		return foldIfConst(v, v.E)
	case *Arith:
		v.L, v.R = Simplify(v.L), Simplify(v.R)
		return foldIfConst(v, v.L, v.R)
	case *InList:
		v.E = Simplify(v.E)
		kids := []Expr{v.E}
		for i := range v.List {
			v.List[i] = Simplify(v.List[i])
			kids = append(kids, v.List[i])
		}
		return foldIfConst(v, kids...)
	case *Like:
		v.E = Simplify(v.E)
		return foldIfConst(v, v.E)
	case *Call:
		for i := range v.Args {
			v.Args[i] = Simplify(v.Args[i])
		}
		return v
	}
	return e
}

// foldIfConst replaces e with a constant when every child is one and the
// one-shot evaluation succeeds.
func foldIfConst(e Expr, children ...Expr) Expr {
	for _, c := range children {
		if !isConst(c) {
			return e
		}
	}
	if v, ok := foldConst(e); ok {
		return &Const{V: v}
	}
	return e
}

// constBool classifies a constant operand for Kleene rewriting.
func constBool(e Expr) (b bool, isNull, ok bool) {
	c, isC := e.(*Const)
	if !isC {
		return false, false, false
	}
	if c.V.IsNull() {
		return false, true, true
	}
	if c.V.Kind() != value.KindBool {
		return false, false, false
	}
	return c.V.AsBool(), false, true
}

func simplifyLogic(lg *Logic) (Expr, bool) {
	if isConst(lg.L) && isConst(lg.R) {
		if v, ok := foldConst(lg); ok {
			return &Const{V: v}, true
		}
		return lg, false
	}
	// One determined side can decide or vanish; null sides cannot (null AND
	// x is not x: it is false when x is false, null otherwise).
	if b, isNull, ok := constBool(lg.L); ok && !isNull {
		return collapseLogic(lg.Op, b, lg.R)
	}
	if b, isNull, ok := constBool(lg.R); ok && !isNull {
		return collapseLogic(lg.Op, b, lg.L)
	}
	return lg, false
}

func collapseLogic(op LogicOp, b bool, other Expr) (Expr, bool) {
	if op == OpAnd {
		if !b {
			return &Const{V: value.Bool(false)}, true
		}
		return other, true
	}
	if b {
		return &Const{V: value.Bool(true)}, true
	}
	return other, true
}

// ConstTruth classifies a (possibly simplified) predicate that is a
// constant: decided reports whether e is row-independent, and truth whether
// it is definitely true. A constant that is null, false, or not a bool
// keeps no rows under Truth semantics, so decided && !truth means a filter
// using e keeps nothing.
func ConstTruth(e Expr) (truth, decided bool) {
	c, ok := e.(*Const)
	if !ok {
		return false, false
	}
	return !c.V.IsNull() && c.V.Kind() == value.KindBool && c.V.AsBool(), true
}
