package algebra

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// ---- Serial table scan (lazy, segment-streamed) ----

type tableScan struct {
	t      *storage.Table
	shared bool
	nSeg   int
	seg    int
	rows   []relation.Tuple
	pos    int
}

// NewTableScan streams a storage table lazily: it snapshots one heap
// segment at a time (a short read lock per segment) and yields its rows
// before touching the next, so a consumer that stops early — LIMIT, an
// early-exiting join probe — clones O(rows consumed + SegmentSize) tuples,
// not the whole table. Rows arrive in row-ID order; each segment is a
// consistent snapshot, the stream as a whole is not a point-in-time copy.
func NewTableScan(t *storage.Table) Iterator {
	return &tableScan{t: t, nSeg: t.Segments()}
}

// NewSharedTableScan is NewTableScan without the per-row cell-slice clone:
// the yielded tuples share cell storage with the table heap
// (storage.ScanSegmentRowsShared). Safe only for read-only consumers that
// rebuild the cell slice before a row escapes — projections, joins,
// aggregates; every QQL pipeline qualifies, handing rows straight to an
// end user does not.
func NewSharedTableScan(t *storage.Table) Iterator {
	return &tableScan{t: t, shared: true, nSeg: t.Segments()}
}

func (s *tableScan) Schema() *schema.Schema { return s.t.Schema() }

func (s *tableScan) SizeHint() int { return s.t.Len() }

func (s *tableScan) Next() (relation.Tuple, bool, error) {
	for s.pos >= len(s.rows) {
		if s.seg >= s.nSeg {
			return relation.Tuple{}, false, nil
		}
		if s.shared {
			s.rows = s.t.ScanSegmentRowsShared(s.seg)
		} else {
			s.rows = s.t.ScanSegmentRows(s.seg)
		}
		s.seg++
		s.pos = 0
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// ---- Index scan (lazy over the row-ID list) ----

type indexScan struct {
	t   *storage.Table
	ids []storage.RowID
	pos int
}

// NewIndexScan streams the rows of t whose target value lies in [lo, hi],
// using an index when available. The target may address an attribute or a
// quality indicator (attr@indicator). Only the matching row-ID list is
// materialized up front; tuples are fetched (and cloned) one at a time as
// the consumer pulls, so LIMIT 1 over a million matches copies one tuple.
//
// A degenerate range — both bounds inclusive on one value — is routed
// through LookupEq rather than LookupRange: equality can use a hash index,
// while the range path needs a B-tree and would silently degrade a
// hash-indexed point lookup to a full scan.
func NewIndexScan(t *storage.Table, target storage.IndexTarget, lo, hi storage.Bound) (Iterator, error) {
	var ids []storage.RowID
	var err error
	if !lo.Unbounded && !hi.Unbounded && lo.Inclusive && hi.Inclusive && value.Equal(lo.Value, hi.Value) {
		ids, err = t.LookupEq(target, lo.Value)
	} else {
		ids, err = t.LookupRange(target, lo, hi)
	}
	if err != nil {
		return nil, err
	}
	return &indexScan{t: t, ids: ids}, nil
}

func (s *indexScan) Schema() *schema.Schema { return s.t.Schema() }

func (s *indexScan) SizeHint() int { return len(s.ids) }

func (s *indexScan) Next() (relation.Tuple, bool, error) {
	for s.pos < len(s.ids) {
		tup, ok := s.t.Get(s.ids[s.pos])
		s.pos++
		if ok { // rows deleted since the lookup are skipped
			return tup, true, nil
		}
	}
	return relation.Tuple{}, false, nil
}

// ---- Parallel table scan ----

// segResult is one worker's output for one segment: the segment's live rows
// (already filtered when a predicate is fused into the scan).
type segResult struct {
	seg  int
	rows []relation.Tuple
	err  error
}

type parallelScan struct {
	t      *storage.Table
	degree int
	shared bool
	pred   Predicate // optional fused predicate, compiled once, shared by workers
	ctx    *EvalContext

	nSeg    int
	started bool
	results chan segResult
	tokens  chan struct{} // in-flight segment budget (backpressure)
	done    chan struct{} // closed when the consumer is finished with us
	closed  sync.Once
	pending map[int][]relation.Tuple
	nextSeg int
	rows    []relation.Tuple
	pos     int
	// workerSegs[w] counts segments scanned by worker w — the occupancy
	// actuals EXPLAIN ANALYZE reports. Atomics because workers race with a
	// consumer reading ExtraStats after the stream ends.
	workerSegs []atomic.Int64
}

// NewParallelScan fans a table scan out across degree workers, one heap
// segment at a time, and merges the per-segment results back in segment
// (therefore row-ID) order — the output is byte-identical to the serial
// NewTableScan. When pred is non-nil it is fused into the workers: each
// worker filters its segment's rows (interpreted Truth, the Volcano
// tier's evaluation mode) before handing them to the merge, so predicate
// evaluation parallelizes along with the copy. pred must be bindable
// against t's schema; evaluation must be read-only after Bind (every
// algebra.Expr and Compiled closure is). degree <= 1, or a table small
// enough to fit one segment, degrades to the serial scan (with the
// predicate applied via Select, preserving semantics).
func NewParallelScan(t *storage.Table, degree int, pred Expr, ctx *EvalContext) (Iterator, error) {
	return newParallelScan(t, degree, pred, ctx, false, false)
}

// NewSharedParallelScan is NewParallelScan over zero-clone segment reads —
// yielded tuples share cell storage with the heap, under the same
// read-only-consumer contract as NewSharedTableScan — with the fused
// predicate's evaluation mode chosen by compiled (CompilePredicate versus
// the interpreted Truth), so the planner's expression-compilation knob
// reaches the workers.
func NewSharedParallelScan(t *storage.Table, degree int, pred Expr, ctx *EvalContext, compiled bool) (Iterator, error) {
	return newParallelScan(t, degree, pred, ctx, true, compiled)
}

func newParallelScan(t *storage.Table, degree int, pred Expr, ctx *EvalContext, shared, compiled bool) (Iterator, error) {
	var pf Predicate
	if pred != nil {
		if err := pred.Bind(t.Schema()); err != nil {
			return nil, err
		}
		if compiled {
			pf = CompilePredicate(pred)
		} else {
			pf = InterpretedPredicate(pred)
		}
	}
	nSeg := t.Segments()
	if degree > nSeg {
		degree = nSeg
	}
	if degree <= 1 {
		var it Iterator
		if shared {
			it = NewSharedTableScan(t)
		} else {
			it = NewTableScan(t)
		}
		if pred != nil {
			return NewSelect(it, pred, ctx)
		}
		return it, nil
	}
	return &parallelScan{t: t, degree: degree, shared: shared, pred: pf, ctx: ctx, nSeg: nSeg,
		done: make(chan struct{})}, nil
}

// Stopper is implemented by iterators that hold background resources
// (worker goroutines, buffered segments). Executors should call Stop once
// the iterator will no longer be pulled — especially after a mid-stream
// error — to release those resources deterministically; an exhausted or
// errored iterator has already stopped itself, and Stop is idempotent. A
// finalizer covers abandoned iterators, but only at the next GC cycle.
type Stopper interface{ Stop() }

// Stop implements Stopper.
func (s *parallelScan) Stop() { s.stop() }

// ExtraStats reports worker occupancy — how many segments each worker
// claimed — for EXPLAIN ANALYZE. An even spread means the work-stealing
// claim loop kept every worker busy; a skewed one means a fused predicate
// or the consumer was the bottleneck.
func (s *parallelScan) ExtraStats() string {
	if s.workerSegs == nil {
		return fmt.Sprintf("workers=%d segments=unstarted", s.degree)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "workers=%d segments=[", s.degree)
	for w := range s.workerSegs {
		if w > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", s.workerSegs[w].Load())
	}
	b.WriteByte(']')
	return b.String()
}

func (s *parallelScan) Schema() *schema.Schema { return s.t.Schema() }

func (s *parallelScan) SizeHint() int {
	if s.pred != nil {
		return -1 // the fused predicate's selectivity is unknown
	}
	return s.t.Len()
}

// stop releases the workers: any worker waiting for an in-flight token
// exits instead of scanning further segments. Called when the stream ends
// (exhaustion or error) and by a finalizer if the consumer abandons the
// iterator mid-stream, so workers never clone the rest of the table for
// nobody.
func (s *parallelScan) stop() {
	s.closed.Do(func() { close(s.done) })
}

// start launches the workers. Segments are claimed by atomic counter so
// fast workers steal work from slow ones. In-flight segments (scanning, or
// scanned but not yet consumed) are capped at 2×degree by a token
// semaphore: the consumer releases a token as it takes each segment, so a
// slow consumer holds resident memory to O(degree) segments instead of the
// whole table. No deadlock is possible: segments are claimed in ascending
// order and consumed in ascending order, so the lowest unconsumed segment
// is always either already delivered or being scanned by a worker that
// needs no further token. Workers capture locals only (not s), so an
// abandoned iterator becomes unreachable and its finalizer runs stop().
func (s *parallelScan) start() {
	s.started = true
	t, pred, ctx, nSeg, degree, shared := s.t, s.pred, s.ctx, s.nSeg, s.degree, s.shared
	budget := 2 * degree
	if budget > nSeg {
		budget = nSeg
	}
	results := make(chan segResult, nSeg)
	tokens := make(chan struct{}, budget)
	for i := 0; i < budget; i++ {
		tokens <- struct{}{}
	}
	done := s.done // created in NewParallelScan so Stop works before start
	s.results, s.tokens = results, tokens
	s.pending = make(map[int][]relation.Tuple, budget)
	s.workerSegs = make([]atomic.Int64, degree)
	var next atomic.Int64
	var failed atomic.Bool
	for w := 0; w < degree; w++ {
		mySegs := &s.workerSegs[w] // capture the counter, not s (finalizer)
		go func() {
			for {
				select {
				case <-tokens:
				case <-done:
					return
				}
				seg := int(next.Add(1)) - 1
				if seg >= nSeg || failed.Load() {
					return
				}
				mySegs.Add(1)
				var rows []relation.Tuple
				if shared {
					rows = t.ScanSegmentRowsShared(seg)
				} else {
					rows = t.ScanSegmentRows(seg)
				}
				if pred != nil {
					kept := rows[:0]
					for _, row := range rows {
						ok, err := pred(row, ctx)
						if err != nil {
							failed.Store(true)
							results <- segResult{seg: seg, err: err}
							return
						}
						if ok {
							kept = append(kept, row)
						}
					}
					rows = kept
				}
				// Buffered for every segment, so this never blocks and a
				// worker always finishes its claimed segment.
				results <- segResult{seg: seg, rows: rows}
			}
		}()
	}
	runtime.SetFinalizer(s, (*parallelScan).stop)
}

func (s *parallelScan) Next() (relation.Tuple, bool, error) {
	if !s.started {
		s.start()
	}
	for {
		if s.pos < len(s.rows) {
			t := s.rows[s.pos]
			s.pos++
			return t, true, nil
		}
		if s.nextSeg >= s.nSeg {
			s.stop()
			return relation.Tuple{}, false, nil
		}
		if rows, ok := s.pending[s.nextSeg]; ok {
			delete(s.pending, s.nextSeg)
			s.rows, s.pos = rows, 0
			s.nextSeg++
			// The segment left the in-flight set; let a worker claim the
			// next one. Never blocks: releases never exceed acquisitions.
			s.tokens <- struct{}{}
			continue
		}
		var r segResult
		select {
		case r = <-s.results:
		case <-s.done:
			// Stop() arrived before the remaining segments: the consumer
			// declared it is finished, so end the stream cleanly rather
			// than wait for workers that have been released.
			s.nextSeg = s.nSeg
			return relation.Tuple{}, false, nil
		}
		if r.err != nil {
			// Terminal: mark the stream exhausted so a caller that ignores
			// the error and calls Next again gets a clean end-of-stream
			// instead of blocking on segments the stopped workers will
			// never deliver.
			s.nextSeg = s.nSeg
			s.stop()
			return relation.Tuple{}, false, r.err
		}
		s.pending[r.seg] = r.rows
	}
}

// DefaultParallelism is the fan-out degree used when a caller asks for
// parallel scanning without naming a degree: one worker per schedulable
// core.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }
