package algebra

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

// randomRelation builds a relation with random values, tags, and sources.
func randomRelation(r *rand.Rand, n int) *relation.Relation {
	s := schema.MustNew("r", []schema.Attr{
		{Name: "k", Kind: value.KindInt},
		{Name: "v", Kind: value.KindString},
	})
	rel := relation.New(s)
	srcs := []string{"s1", "s2", "s3"}
	for i := 0; i < n; i++ {
		cells := []relation.Cell{
			{V: value.Int(r.Int63n(8))},
			{V: value.Str(string(rune('a' + r.Intn(4))))},
		}
		if r.Intn(2) == 0 {
			cells[1].Tags = tag.NewSet(tag.Tag{Indicator: "source", Value: value.Str(srcs[r.Intn(3)])})
			cells[1].Sources = tag.NewSources(srcs[r.Intn(3)])
		}
		rel.Tuples = append(rel.Tuples, relation.Tuple{Cells: cells})
	}
	return rel
}

// TestJoinCommutativityUpToColumnOrder: |A ⋈ B| == |B ⋈ A| and the multiset
// of (k-pair) matches agrees, on random inputs.
func TestJoinCommutativityUpToColumnOrder(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	ctx := &EvalContext{}
	for trial := 0; trial < 30; trial++ {
		a := randomRelation(r, 1+r.Intn(40))
		b := randomRelation(r, 1+r.Intn(40))
		// Rename b's relation so join schemas disambiguate.
		bIt, err := NewRename(NewRelationScan(b), "r2", map[string]string{"k": "k2", "v": "v2"})
		if err != nil {
			t.Fatal(err)
		}
		ab, err := NewHashJoin(NewRelationScan(a), bIt,
			&ColRef{Name: "k"}, &ColRef{Name: "k2"}, nil, ctx)
		if err != nil {
			t.Fatal(err)
		}
		abOut, err := Collect(ab)
		if err != nil {
			t.Fatal(err)
		}
		bIt2, err := NewRename(NewRelationScan(b), "r2", map[string]string{"k": "k2", "v": "v2"})
		if err != nil {
			t.Fatal(err)
		}
		ba, err := NewHashJoin(bIt2, NewRelationScan(a),
			&ColRef{Name: "k2"}, &ColRef{Name: "k"}, nil, ctx)
		if err != nil {
			t.Fatal(err)
		}
		baOut, err := Collect(ba)
		if err != nil {
			t.Fatal(err)
		}
		if abOut.Len() != baOut.Len() {
			t.Fatalf("trial %d: |A⋈B| = %d, |B⋈A| = %d", trial, abOut.Len(), baOut.Len())
		}
	}
}

// TestDistinctIdempotent: distinct(distinct(x)) == distinct(x).
func TestDistinctIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		rel := randomRelation(r, r.Intn(60))
		d1, err := Collect(NewDistinct(NewRelationScan(rel)))
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Collect(NewDistinct(NewRelationScan(d1)))
		if err != nil {
			t.Fatal(err)
		}
		if d1.Len() != d2.Len() {
			t.Fatalf("trial %d: distinct not idempotent: %d vs %d", trial, d1.Len(), d2.Len())
		}
		for i := range d1.Tuples {
			if !d1.Tuples[i].Equal(d2.Tuples[i]) {
				t.Fatalf("trial %d: row %d changed", trial, i)
			}
		}
	}
}

// TestUnionCardinality: |A ∪ B| == |A| + |B| under bag semantics, and
// difference inverts union: |(A ∪ B) − B| == |A|.
func TestUnionCardinality(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		a := randomRelation(r, r.Intn(40))
		b := randomRelation(r, r.Intn(40))
		u, err := NewUnion(NewRelationScan(a), NewRelationScan(b))
		if err != nil {
			t.Fatal(err)
		}
		uOut, err := Collect(u)
		if err != nil {
			t.Fatal(err)
		}
		if uOut.Len() != a.Len()+b.Len() {
			t.Fatalf("trial %d: union %d != %d + %d", trial, uOut.Len(), a.Len(), b.Len())
		}
		diff, err := NewDifference(NewRelationScan(uOut), NewRelationScan(b))
		if err != nil {
			t.Fatal(err)
		}
		dOut, err := Collect(diff)
		if err != nil {
			t.Fatal(err)
		}
		if dOut.Len() != a.Len() {
			t.Fatalf("trial %d: (A∪B)−B has %d rows, want %d", trial, dOut.Len(), a.Len())
		}
	}
}

// TestSelectPartition: select(p) and select(NOT p) partition the non-null
// rows of the predicate.
func TestSelectPartition(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ctx := &EvalContext{}
	for trial := 0; trial < 30; trial++ {
		rel := randomRelation(r, r.Intn(80))
		pred := func() Expr {
			return &Cmp{Op: OpGt, L: &ColRef{Name: "k"}, R: &Const{V: value.Int(r.Int63n(8))}}
		}
		p1 := pred()
		sel, err := NewSelect(NewRelationScan(rel), p1, ctx)
		if err != nil {
			t.Fatal(err)
		}
		yes, err := Collect(sel)
		if err != nil {
			t.Fatal(err)
		}
		p2 := pred()
		p2.(*Cmp).R = p1.(*Cmp).R
		selNot, err := NewSelect(NewRelationScan(rel), &Not{E: p2}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		no, err := Collect(selNot)
		if err != nil {
			t.Fatal(err)
		}
		// k is never null here, so the two selections partition exactly.
		if yes.Len()+no.Len() != rel.Len() {
			t.Fatalf("trial %d: %d + %d != %d", trial, yes.Len(), no.Len(), rel.Len())
		}
	}
}

// TestProjectPreservesProvenanceAlways: a plain column projection never
// alters tags or sources, for any random input.
func TestProjectPreservesProvenanceAlways(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	ctx := &EvalContext{}
	for trial := 0; trial < 30; trial++ {
		rel := randomRelation(r, r.Intn(50))
		it, err := NewProject(NewRelationScan(rel), []ProjectItem{{Expr: &ColRef{Name: "v"}}}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Collect(it)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out.Tuples {
			want := rel.Tuples[i].Cells[1]
			got := out.Tuples[i].Cells[0]
			if !got.Equal(want) {
				t.Fatalf("trial %d row %d: provenance changed: %v vs %v", trial, i, got, want)
			}
		}
	}
}
