package algebra

import (
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/tag"
	"repro/internal/value"
)

var exprNow = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

func exprSchema() *schema.Schema {
	return schema.MustNew("t", []schema.Attr{
		{Name: "name", Kind: value.KindString},
		{Name: "n", Kind: value.KindInt},
		{Name: "price", Kind: value.KindFloat},
		{Name: "when", Kind: value.KindTime},
	})
}

func exprRow() relation.Tuple {
	created := time.Date(1991, 10, 3, 0, 0, 0, 0, time.UTC)
	return relation.Tuple{Cells: []relation.Cell{
		{V: value.Str("Fruit Co"), Sources: tag.NewSources("nexis")},
		{V: value.Int(4004), Tags: tag.NewSet(tag.Tag{Indicator: "source", Value: value.Str("Nexis")})},
		{V: value.Float(12.5)},
		{V: value.Time(created), Tags: tag.NewSet(tag.Tag{Indicator: "creation_time", Value: value.Time(created)})},
	}}
}

func evalOn(t *testing.T, e Expr) value.Value {
	t.Helper()
	if err := e.Bind(exprSchema()); err != nil {
		t.Fatalf("bind %s: %v", e.String(), err)
	}
	v, err := e.Eval(exprRow(), &EvalContext{Now: exprNow})
	if err != nil {
		t.Fatalf("eval %s: %v", e.String(), err)
	}
	return v
}

func TestColAndIndicatorRefs(t *testing.T) {
	if v := evalOn(t, &ColRef{Name: "name"}); v.AsString() != "Fruit Co" {
		t.Errorf("col ref = %v", v)
	}
	if v := evalOn(t, &IndRef{Col: "n", Indicator: "source"}); v.AsString() != "Nexis" {
		t.Errorf("ind ref = %v", v)
	}
	if v := evalOn(t, &IndRef{Col: "name", Indicator: "source"}); !v.IsNull() {
		t.Errorf("missing indicator should be null, got %v", v)
	}
	bad := &ColRef{Name: "nope"}
	if err := bad.Bind(exprSchema()); err == nil {
		t.Error("bind of unknown column should fail")
	}
	badInd := &IndRef{Col: "nope", Indicator: "x"}
	if err := badInd.Bind(exprSchema()); err == nil {
		t.Error("bind of unknown indicator column should fail")
	}
}

func TestSrcContains(t *testing.T) {
	if v := evalOn(t, &SrcContains{Col: "name", Source: "nexis"}); !v.AsBool() {
		t.Error("SOURCE(name,'nexis') should be true")
	}
	if v := evalOn(t, &SrcContains{Col: "name", Source: "wsj"}); v.AsBool() {
		t.Error("SOURCE(name,'wsj') should be false")
	}
}

func TestComparisonsAndNulls(t *testing.T) {
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{&Cmp{OpEq, &ColRef{Name: "n"}, &Const{value.Int(4004)}}, value.Bool(true)},
		{&Cmp{OpNe, &ColRef{Name: "n"}, &Const{value.Int(4004)}}, value.Bool(false)},
		{&Cmp{OpLt, &ColRef{Name: "price"}, &Const{value.Int(13)}}, value.Bool(true)},
		{&Cmp{OpGe, &ColRef{Name: "price"}, &Const{value.Float(12.5)}}, value.Bool(true)},
		{&Cmp{OpGt, &ColRef{Name: "n"}, &Const{value.Null}}, value.Null},
		{&Cmp{OpLe, &ColRef{Name: "n"}, &Const{value.Int(4004)}}, value.Bool(true)},
	}
	for _, tc := range cases {
		got := evalOn(t, tc.e)
		if !value.Equal(got, tc.want) || got.IsNull() != tc.want.IsNull() {
			t.Errorf("%s = %v, want %v", tc.e.String(), got, tc.want)
		}
	}
}

func TestKleeneLogic(t *testing.T) {
	tr := &Const{value.Bool(true)}
	fa := &Const{value.Bool(false)}
	nl := &Const{value.Null}
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{&Logic{OpAnd, tr, tr}, value.Bool(true)},
		{&Logic{OpAnd, tr, fa}, value.Bool(false)},
		{&Logic{OpAnd, fa, nl}, value.Bool(false)},
		{&Logic{OpAnd, nl, fa}, value.Bool(false)},
		{&Logic{OpAnd, tr, nl}, value.Null},
		{&Logic{OpAnd, nl, nl}, value.Null},
		{&Logic{OpOr, fa, fa}, value.Bool(false)},
		{&Logic{OpOr, fa, tr}, value.Bool(true)},
		{&Logic{OpOr, nl, tr}, value.Bool(true)},
		{&Logic{OpOr, tr, nl}, value.Bool(true)},
		{&Logic{OpOr, fa, nl}, value.Null},
		{&Logic{OpOr, nl, nl}, value.Null},
	}
	for _, tc := range cases {
		got := evalOn(t, tc.e)
		if !value.Equal(got, tc.want) || got.IsNull() != tc.want.IsNull() {
			t.Errorf("%s = %v, want %v", tc.e.String(), got, tc.want)
		}
	}
	if got := evalOn(t, &Not{tr}); got.AsBool() {
		t.Error("NOT true = true?")
	}
	if got := evalOn(t, &Not{nl}); !got.IsNull() {
		t.Error("NOT null should be null")
	}
}

func TestArithExprAndNeg(t *testing.T) {
	if v := evalOn(t, &Arith{OpAdd, &ColRef{Name: "n"}, &Const{value.Int(1)}}); v.AsInt() != 4005 {
		t.Errorf("n+1 = %v", v)
	}
	if v := evalOn(t, &Arith{OpMul, &ColRef{Name: "price"}, &Const{value.Int(2)}}); v.AsFloat() != 25 {
		t.Errorf("price*2 = %v", v)
	}
	if v := evalOn(t, &Neg{&ColRef{Name: "n"}}); v.AsInt() != -4004 {
		t.Errorf("-n = %v", v)
	}
}

func TestIsNullInListLike(t *testing.T) {
	if v := evalOn(t, &IsNull{E: &Const{value.Null}}); !v.AsBool() {
		t.Error("null IS NULL should be true")
	}
	if v := evalOn(t, &IsNull{E: &ColRef{Name: "n"}, Negate: true}); !v.AsBool() {
		t.Error("n IS NOT NULL should be true")
	}
	in := &InList{E: &ColRef{Name: "name"}, List: []Expr{&Const{value.Str("Nut Co")}, &Const{value.Str("Fruit Co")}}}
	if v := evalOn(t, in); !v.AsBool() {
		t.Error("IN should match")
	}
	notIn := &InList{E: &ColRef{Name: "name"}, List: []Expr{&Const{value.Str("Nut Co")}}, Negate: true}
	if v := evalOn(t, notIn); !v.AsBool() {
		t.Error("NOT IN should hold")
	}
	inNull := &InList{E: &ColRef{Name: "name"}, List: []Expr{&Const{value.Str("X")}, &Const{value.Null}}}
	if v := evalOn(t, inNull); !v.IsNull() {
		t.Error("IN with null member and no match should be null")
	}
	lk := &Like{E: &ColRef{Name: "name"}, Pattern: "Fruit%"}
	if v := evalOn(t, lk); !v.AsBool() {
		t.Error("LIKE 'Fruit%' should match")
	}
	lk2 := &Like{E: &ColRef{Name: "name"}, Pattern: "F_uit Co"}
	if v := evalOn(t, lk2); !v.AsBool() {
		t.Error("LIKE with _ should match")
	}
	lk3 := &Like{E: &ColRef{Name: "name"}, Pattern: "Nut%", Negate: true}
	if v := evalOn(t, lk3); !v.AsBool() {
		t.Error("NOT LIKE should hold")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"%", "", true}, {"%", "abc", true}, {"", "", true}, {"", "a", false},
		{"a%", "abc", true}, {"%c", "abc", true}, {"%b%", "abc", true},
		{"a_c", "abc", true}, {"a_c", "ac", false}, {"abc", "abc", true},
		{"a%c%e", "abcde", true}, {"a%ce", "abcde", false},
		{"%%", "x", true}, {"_", "x", true}, {"_", "", false},
	}
	for _, tc := range cases {
		if got := likeMatch(tc.pat, tc.s); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tc.pat, tc.s, got, tc.want)
		}
	}
}

func TestBuiltinCalls(t *testing.T) {
	if v := evalOn(t, &Call{Name: "now"}); !v.AsTime().Equal(exprNow) {
		t.Errorf("NOW() = %v", v)
	}
	age := evalOn(t, &Call{Name: "age", Args: []Expr{&ColRef{Name: "when"}}})
	wantAge := exprNow.Sub(time.Date(1991, 10, 3, 0, 0, 0, 0, time.UTC))
	if age.AsDuration() != wantAge {
		t.Errorf("AGE = %v, want %v", age, wantAge)
	}
	if v := evalOn(t, &Call{Name: "length", Args: []Expr{&ColRef{Name: "name"}}}); v.AsInt() != 8 {
		t.Errorf("LENGTH = %v", v)
	}
	if v := evalOn(t, &Call{Name: "lower", Args: []Expr{&ColRef{Name: "name"}}}); v.AsString() != "fruit co" {
		t.Errorf("LOWER = %v", v)
	}
	if v := evalOn(t, &Call{Name: "upper", Args: []Expr{&ColRef{Name: "name"}}}); v.AsString() != "FRUIT CO" {
		t.Errorf("UPPER = %v", v)
	}
	if v := evalOn(t, &Call{Name: "abs", Args: []Expr{&Const{value.Int(-4)}}}); v.AsInt() != 4 {
		t.Errorf("ABS = %v", v)
	}
	if v := evalOn(t, &Call{Name: "abs", Args: []Expr{&Const{value.Float(-2.5)}}}); v.AsFloat() != 2.5 {
		t.Errorf("ABS float = %v", v)
	}
	if v := evalOn(t, &Call{Name: "year", Args: []Expr{&ColRef{Name: "when"}}}); v.AsInt() != 1991 {
		t.Errorf("YEAR = %v", v)
	}
	co := &Call{Name: "coalesce", Args: []Expr{&Const{value.Null}, &Const{value.Int(7)}}}
	if v := evalOn(t, co); v.AsInt() != 7 {
		t.Errorf("COALESCE = %v", v)
	}
	bad := &Call{Name: "frobnicate", Args: nil}
	if err := bad.Bind(exprSchema()); err == nil {
		t.Error("unknown function should fail Bind")
	}
	badArity := &Call{Name: "age"}
	if err := badArity.Bind(exprSchema()); err == nil {
		t.Error("wrong arity should fail Bind")
	}
}

func TestReferencedCols(t *testing.T) {
	e := &Arith{OpAdd, &ColRef{Name: "n"}, &Arith{OpMul, &IndRef{Col: "price", Indicator: "x"}, &ColRef{Name: "n"}}}
	if err := e.Bind(exprSchema()); err != nil {
		t.Fatal(err)
	}
	cols := ReferencedCols(e)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 2 {
		t.Errorf("ReferencedCols = %v, want [1 2]", cols)
	}
}

func TestExprStrings(t *testing.T) {
	e := &Logic{OpAnd,
		&Cmp{OpGt, &ColRef{Name: "n"}, &Const{value.Int(3)}},
		&Like{E: &ColRef{Name: "name"}, Pattern: "F%"}}
	want := "((n > 3) AND (name LIKE 'F%'))"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := (&IndRef{Col: "a", Indicator: "src"}).String(); got != "a@src" {
		t.Errorf("IndRef string = %q", got)
	}
}
