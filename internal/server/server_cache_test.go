package server_test

import (
	"strings"
	"testing"

	"repro/internal/server"
)

// TestServerDropTableOverWire exercises DROP TABLE end-to-end through the
// wire protocol: drop, error on the gone table, recreate under a new
// schema, and correct answers afterwards — against the shared plan cache.
func TestServerDropTableOverWire(t *testing.T) {
	srv := startServer(t, server.Config{})
	a := dial(t, srv)
	b := dial(t, srv)

	if _, err := a.Exec(`CREATE TABLE t (a int, b int); INSERT INTO t VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	q := `SELECT b FROM t WHERE a = 1`
	// Warm the bound-plan cache from both connections.
	for i := 0; i < 2; i++ {
		if n, err := a.QueryInt(q); err != nil || n != 10 {
			t.Fatalf("warm query = %d, %v", n, err)
		}
		if n, err := b.QueryInt(q); err != nil || n != 10 {
			t.Fatalf("warm query (conn b) = %d, %v", n, err)
		}
	}

	msg, err := a.Exec(`DROP TABLE t`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "dropped table t") {
		t.Errorf("drop msg = %q", msg)
	}
	// The other connection sees the drop — and its cached plan must not
	// resurrect the old table.
	if _, _, err := b.Query(q); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("query after drop on second conn: err = %v", err)
	}

	// Recreate with b renamed away: the cached plan must re-bind and fail
	// on the missing column rather than replay stale column indexes.
	if _, err := a.Exec(`CREATE TABLE t (a int, c int); INSERT INTO t VALUES (1, 99)`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Query(q); err == nil || !strings.Contains(err.Error(), "unknown column b") {
		t.Fatalf("stale plan survived drop/recreate over the wire: err = %v", err)
	}
	if n, err := b.QueryInt(`SELECT c FROM t WHERE a = 1`); err != nil || n != 99 {
		t.Fatalf("recreated-table query = %d, %v", n, err)
	}
	if st := srv.Stats(); st.Cache.PlanInvalidations == 0 {
		t.Errorf("drop/recreate caused no plan invalidations: %+v", st.Cache)
	}
}

// TestServerCacheDisabled verifies a negative CacheSize genuinely turns the
// shared cache off instead of silently meaning "default".
func TestServerCacheDisabled(t *testing.T) {
	srv := startServer(t, server.Config{CacheSize: -1})
	c := dial(t, srv)
	if _, err := c.Exec(`CREATE TABLE t (a int); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if n, err := c.QueryInt(`SELECT COUNT(*) AS n FROM t`); err != nil || n != 1 {
			t.Fatalf("query %d = %d, %v", i, n, err)
		}
	}
	st := srv.Stats()
	if !st.Cache.Disabled {
		t.Errorf("Stats.Cache.Disabled = false with CacheSize -1: %+v", st.Cache)
	}
	if st.Cache.Hits+st.Cache.Misses+st.Cache.PlanHits+st.Cache.PlanMisses != 0 {
		t.Errorf("disabled cache saw traffic: %+v", st.Cache)
	}

	// EXPLAIN reports the bypass.
	resp, err := c.Do(`EXPLAIN SELECT a FROM t`)
	if err != nil || resp.Err != "" {
		t.Fatalf("explain: %v %q", err, resp.Err)
	}
	if !strings.Contains(resp.Plan, "plan cache: bypass") {
		t.Errorf("EXPLAIN plan = %q, want bypass line", resp.Plan)
	}
}

// TestServerPlanTierStats checks both tiers are reported distinctly: a
// repeated SELECT lands in the bound-plan tier, repeated DML in the AST
// tier.
func TestServerPlanTierStats(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)
	if _, err := c.Exec(`CREATE TABLE t (a int) KEY (a)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Exec(`INSERT INTO t VALUES (` + string(rune('1'+i)) + `)`); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec(`UPDATE t SET a = a WHERE a < 0`); err != nil {
			t.Fatal(err)
		}
		if _, err := c.QueryInt(`SELECT COUNT(*) AS n FROM t`); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats().Cache
	if st.PlanHits < 3 {
		t.Errorf("plan tier hits = %d, want >= 3 (%+v)", st.PlanHits, st)
	}
	if st.Hits < 3 { // repeated UPDATE is AST-tier traffic
		t.Errorf("AST tier hits = %d, want >= 3 (%+v)", st.Hits, st)
	}
	if st.PlanEntries == 0 || st.Entries == 0 {
		t.Errorf("both tiers should hold entries: %+v", st)
	}
	if st.PlanHitRate() <= 0 || st.HitRate() <= 0 {
		t.Errorf("hit rates = %v / %v, want > 0", st.PlanHitRate(), st.HitRate())
	}
}
