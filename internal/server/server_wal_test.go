package server_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/storage/wal"
)

// startDurableServer boots a server whose catalog is recovered from (and
// written through) a WAL in dir.
func startDurableServer(t *testing.T, dir string) (*server.Server, *wal.Log) {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{
		Addr:     "127.0.0.1:0",
		MaxConns: 8,
		Now:      time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC),
		WAL:      l,
	}
	srv := server.New(l.Catalog(), cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	return srv, l
}

// TestServerDurableRestart: a server writing through a WAL is stopped and
// a second one recovered over the same directory; every query the first
// answered must come back byte-identical from the second.
func TestServerDurableRestart(t *testing.T) {
	dir := t.TempDir()
	srv, l := startDurableServer(t, dir)
	c := dial(t, srv)
	script := []string{
		`CREATE TABLE emp (id int REQUIRED, name string QUALITY (source string)) KEY (id)`,
		`INSERT INTO emp VALUES (1, 'ada' @ {source: 'hr'} SOURCE 'hr_db'), (2, 'grace')`,
		`CREATE INDEX ON emp (id) USING HASH`,
		`UPDATE emp SET name = 'alan' WHERE id = 2`,
	}
	for _, q := range script {
		if _, err := c.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	queries := []string{
		`SELECT id, name FROM emp ORDER BY id`,
		`SELECT COUNT(*) AS n FROM emp`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = renderQuery(t, c, q)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, l2 := startDurableServer(t, dir)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		l2.Close()
	})
	if l2.RecoveryStats().Replayed == 0 && l2.RecoveryStats().CheckpointSeq == 0 {
		t.Fatal("second boot recovered nothing")
	}
	c2 := dial(t, srv2)
	for i, q := range queries {
		if got := renderQuery(t, c2, q); got != want[i] {
			t.Fatalf("%s diverged after restart:\ngot:\n%s\nwant:\n%s", q, got, want[i])
		}
	}
}

// TestServerBatchFrameOneCommit: a whole batch frame is made durable by a
// single commit — the group-commit contract the bench relies on.
func TestServerBatchFrameOneCommit(t *testing.T) {
	dir := t.TempDir()
	srv, l := startDurableServer(t, dir)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		l.Close()
	})
	c := dial(t, srv)
	if _, err := c.Exec(`CREATE TABLE t (a int)`); err != nil {
		t.Fatal(err)
	}
	base := l.Stats().Commits
	qs := make([]string, 50)
	for i := range qs {
		qs[i] = fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i)
	}
	resps, err := c.ExecBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Err != "" {
			t.Fatalf("statement %d: %s", i, r.Err)
		}
	}
	st := l.Stats()
	if got := st.Commits - base; got != 1 {
		t.Fatalf("batch of %d issued %d commits, want 1", len(qs), got)
	}
	if st.DurableSeq != st.AppendedSeq {
		t.Fatalf("batch acknowledged with durable horizon %d behind appended %d",
			st.DurableSeq, st.AppendedSeq)
	}
	n, err := c.QueryInt(`SELECT COUNT(*) AS n FROM t`)
	if err != nil || n != int64(len(qs)) {
		t.Fatalf("count = %d, %v", n, err)
	}
}

// renderQuery flattens a query result to a stable string.
func renderQuery(t *testing.T, c *client.Client, q string) string {
	t.Helper()
	cols, rows, err := c.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	var b strings.Builder
	b.WriteString(strings.Join(cols, "\t"))
	b.WriteString("\n")
	for _, r := range rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteString("\n")
	}
	return b.String()
}
