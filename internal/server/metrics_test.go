package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
)

// scrapeMetrics GETs /metrics from the server's observability handler and
// returns the Prometheus text body.
func scrapeMetrics(t *testing.T, srv *server.Server) string {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	return rec.Body.String()
}

func TestMetricsEndpoint(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)

	if _, err := c.Exec(`CREATE TABLE customer (
		co_name string REQUIRED,
		employees int QUALITY (creation_time time, source string)
	) KEY (co_name) STRICT`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO customer VALUES
		('Fruit Co', 4004 @ {creation_time: t'1991-10-03T00:00:00Z', source: 'Nexis'}),
		('Nut Co', 700 @ {creation_time: t'1991-10-09T00:00:00Z', source: 'estimate'})`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(`SELECT co_name FROM customer ORDER BY co_name`); err != nil {
		t.Fatal(err)
	}

	body := scrapeMetrics(t, srv)
	for _, want := range []string{
		// Request accounting, per kind and per protocol.
		`qqld_statements_total{kind="select"} 1`,
		`qqld_statements_total{kind="insert"} 1`,
		`qqld_statements_total{kind="create"} 1`,
		`qqld_requests_total{proto="v2"} 3`,
		// Latency histogram with quantiles.
		`qqld_query_seconds{quantile="0.5"}`,
		`qqld_query_seconds_count 3`,
		// Pre-registered kinds exist at zero before any such statement.
		`qqld_statements_total{kind="delete"} 0`,
		// Plan cache and connection series.
		`qqld_plan_cache_hits_total{tier="plan"}`,
		`qqld_connections_active 1`,
		// Quality-of-data gauges from tags.
		`qqld_table_rows{table="customer"} 2`,
		`qqld_table_source_rows{table="customer",source="Nexis"} 1`,
		`qqld_table_source_rows{table="customer",source="estimate"} 1`,
		`qqld_table_oldest_creation_seconds{table="customer"} 686448000`,
		`qqld_table_newest_creation_seconds{table="customer"} 686966400`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("body:\n%s", body)
	}

	// DML bumps the data version; the next scrape sees the new profile.
	if _, err := c.Exec(`DELETE FROM customer WHERE co_name = 'Nut Co'`); err != nil {
		t.Fatal(err)
	}
	body = scrapeMetrics(t, srv)
	if !strings.Contains(body, `qqld_table_rows{table="customer"} 1`) {
		t.Errorf("quality gauges not refreshed after DELETE:\n%s", body)
	}
	if strings.Contains(body, `source="estimate"`) {
		t.Errorf("vanished source still exposed after DELETE:\n%s", body)
	}
}

func TestStatsEndpointJSON(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)
	if _, _, err := c.Query(`SHOW TABLES`); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/stats", nil)
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/stats status = %d", rec.Code)
	}
	var got struct {
		Server  server.Stats     `json:"server"`
		Metrics []map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad /stats JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Server.Queries != 1 {
		t.Errorf("server.queries = %d, want 1", got.Server.Queries)
	}
	if len(got.Metrics) == 0 {
		t.Error("empty metrics snapshot")
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv := startServer(t, server.Config{})
	req := httptest.NewRequest("GET", "/debug/pprof/heap?debug=1", nil)
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/heap status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "heap profile") {
		t.Errorf("unexpected heap profile body: %.100s", rec.Body.String())
	}
}

// TestMetricsScrapeUnderLoad hammers the server with 8 connections of mixed
// DML and queries while concurrently scraping /metrics — the -race check
// that every counter, gauge and histogram on the hot path is safe.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	srv := startServer(t, server.Config{})
	setup := dial(t, srv)
	if _, err := setup.Exec(`CREATE TABLE load (id int REQUIRED, grp string QUALITY (source string)) KEY (id)`); err != nil {
		t.Fatal(err)
	}

	const conns, iters = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < iters; i++ {
				id := w*iters + i
				if _, err := c.Exec(fmt.Sprintf(
					`INSERT INTO load VALUES (%d, 'g' @ {source: 'w%d'})`, id, w)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := c.Query(`SELECT COUNT(*) AS n FROM load`); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Exec(`EXPLAIN ANALYZE SELECT id FROM load WHERE id >= 0`); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			body := scrapeMetrics(t, srv)
			want := fmt.Sprintf(`qqld_table_rows{table="load"} %d`, conns*iters)
			if !strings.Contains(body, want) {
				t.Errorf("final scrape missing %q", want)
			}
			if !strings.Contains(body, `qqld_statements_total{kind="explain analyze"} 200`) {
				t.Errorf("explain analyze count off:\n%s", body)
			}
			return
		default:
			scrapeMetrics(t, srv)
			time.Sleep(time.Millisecond)
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	srv := startServer(t, server.Config{SlowQuery: time.Nanosecond, SlowQueryLog: &buf})
	c := dial(t, srv)
	if _, err := c.Exec(`CREATE TABLE slow (id int REQUIRED) KEY (id)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO slow VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(`SELECT id FROM slow WHERE id >= 2 ORDER BY id`); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query lines logged:\n%s", out)
	}
	// The SELECT's line carries normalized text, row count, cache tier and
	// plan shape.
	var line string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "SELECT") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no SELECT slow-query line:\n%s", out)
	}
	for _, want := range []string{
		"rows=2", "cache=", "plan=", "stmt=SELECT id FROM slow WHERE id >= 2 ORDER BY id",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line missing %q: %s", want, line)
		}
	}
}

func TestShowStatsOverWire(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)
	if _, _, err := c.Query(`SHOW TABLES`); err != nil {
		t.Fatal(err)
	}
	cols, rows, err := c.QueryValues(`SHOW STATS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != "stat" {
		t.Fatalf("cols = %v", cols)
	}
	stats := map[string]string{}
	for _, r := range rows {
		stats[r[0].AsString()] = r[1].AsString()
	}
	// The server registers its counters as extra rows, so clients see both
	// session- and server-level stats over the wire.
	for _, want := range []string{"session_statements", "server_queries", "server_connections_active"} {
		if _, ok := stats[want]; !ok {
			t.Errorf("SHOW STATS missing %q (got %v)", want, stats)
		}
	}
	if stats["server_connections_active"] != "1" {
		t.Errorf("server_connections_active = %q, want 1", stats["server_connections_active"])
	}
}
