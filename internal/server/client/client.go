// Package client is the Go client for qqld. A Client owns one TCP
// connection and, on the default wire v2 protocol, runs an asynchronous
// core: a writer goroutine streams request frames onto the socket while a
// reader goroutine demultiplexes responses by request ID, so many requests
// can be in flight on the one connection at once (pipelining). Do, Query
// and Exec remain synchronous wrappers — each sends and waits for its own
// response — but concurrent callers no longer serialize on a round-trip
// mutex, and DoAsync/ExecBatch expose the pipeline directly. With
// Options{Version: 1} the Client instead speaks the legacy line-JSON
// protocol, where calls are serialized in lockstep.
//
// A v2 Client survives its connection: when the transport fails, in-flight
// calls fail with an error wrapping ErrConnClosed, and the next call
// transparently dials a fresh connection (with Options.Retry's jittered
// exponential backoff). Failed calls are never re-sent automatically — the
// server may have executed them — so retry of the statement itself stays
// with the caller, who knows whether it is idempotent.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server/wire"
	"repro/internal/value"
)

// Retry tunes connection-establishment retries, applied to the first dial
// and to every transparent reconnect after a transport failure. The
// statement that observed the failure is NOT retried — only the dial is.
type Retry struct {
	// Attempts is the total number of dial attempts per connection
	// (default 1: fail fast, no retry).
	Attempts int
	// Backoff is the wait before the second attempt; it doubles per
	// attempt with ±50% jitter. Default 50ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Default 2s.
	MaxBackoff time.Duration
}

// Options tunes a connection; the zero value means wire v2, binary
// payloads, pipeline depth 64, 5s dial timeout, no dial retries.
type Options struct {
	// Version selects the protocol: 2 (default, framed + pipelined) or 1
	// (legacy line-delimited JSON, one request in flight).
	Version int
	// Encoding selects the v2 request payload encoding: "binary"
	// (default) or "json". Responses are decoded by their frame header,
	// whatever the server chose.
	Encoding string
	// MaxInFlight caps the requests this client keeps in flight; further
	// sends block until responses drain. Default 64.
	MaxInFlight int
	// DialTimeout bounds one TCP connect attempt. Default 5s.
	DialTimeout time.Duration
	// Retry tunes dial/reconnect attempts and backoff.
	Retry Retry
}

// ErrClosed is returned for calls on a client the caller Closed.
var ErrClosed = errors.New("client: closed")

// ErrConnClosed marks transport failures: the connection a call was using
// is gone (reset, EOF, timeout-poisoned v1 stream). Test with
// errors.Is(err, ErrConnClosed). On wire v2 the next call dials a fresh
// connection; the failed call itself is not replayed.
var ErrConnClosed = errors.New("client: connection closed")

// result is one demultiplexed reply.
type result struct {
	resp  *wire.Response
	batch []wire.Response
	err   error
}

// Client is a reusable handle to a qqld server. It is safe for concurrent
// use; on wire v2, concurrent calls pipeline onto one socket instead of
// queueing behind each other's round-trips, and a broken socket is
// replaced on the next call.
type Client struct {
	addr string
	opts Options
	enc  wire.Encoding

	closed atomic.Bool

	// v1 (legacy) state: one request/response round-trip at a time, no
	// reconnect (the stream has no request IDs to resynchronize on).
	v1    bool
	mu    sync.Mutex
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	jenc  *json.Encoder
	v1Err error // sticky poison; wraps ErrConnClosed

	// v2: the current connection core and the reconnect single-flight.
	coreMu    sync.Mutex
	cur       *core
	redialing chan struct{} // non-nil while one goroutine redials
	dialErr   error         // outcome of the last finished redial
}

// core is one v2 connection's asynchronous machinery. A Client replaces
// its core on reconnect; in-flight requests stay bound to the core that
// carried them.
type core struct {
	conn net.Conn
	enc  wire.Encoding

	sendCh    chan []byte   // encoded frames for the writer goroutine
	done      chan struct{} // closed on shutdown; stops the writer
	closeOnce sync.Once
	slots     chan struct{} // in-flight semaphore (cap MaxInFlight)
	dead      atomic.Bool   // set by fail; the client then redials

	pendMu  sync.Mutex
	pending map[uint64]chan result
	nextID  uint64
	connErr error // first transport error; sticky
}

// Dial connects to a qqld server at addr ("host:port") with default
// Options: wire v2, binary encoding, pipelined.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, Options{DialTimeout: timeout})
}

// DialOptions connects with explicit protocol options.
func DialOptions(addr string, o Options) (*Client, error) {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	var enc wire.Encoding
	switch o.Encoding {
	case "", "binary":
		enc = wire.EncBinary
	case "json":
		enc = wire.EncJSON
	default:
		return nil, fmt.Errorf("client: unknown encoding %q (want binary or json)", o.Encoding)
	}
	c := &Client{addr: addr, opts: o, enc: enc}
	if o.Version == 1 {
		conn, err := c.dialConn()
		if err != nil {
			return nil, err
		}
		c.v1 = true
		c.conn = conn
		c.bw = bufio.NewWriter(conn)
		c.br = bufio.NewReaderSize(conn, 64*1024)
		c.jenc = json.NewEncoder(c.bw)
		return c, nil
	}
	co, err := c.dialCore()
	if err != nil {
		return nil, err
	}
	c.cur = co
	return c, nil
}

// dialConn establishes one TCP connection, applying Retry's jittered
// exponential backoff across attempts.
func (c *Client) dialConn() (net.Conn, error) {
	attempts := c.opts.Retry.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	backoff := c.opts.Retry.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	maxBackoff := c.opts.Retry.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(jitter(backoff))
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			if c.closed.Load() {
				return nil, ErrClosed
			}
		}
		conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	if attempts > 1 {
		return nil, fmt.Errorf("client: dial %s (%d attempts): %w", c.addr, attempts, lastErr)
	}
	return nil, fmt.Errorf("client: dial %s: %w", c.addr, lastErr)
}

// jitter spreads d by ±50% so reconnecting clients don't stampede a
// restarting server in lockstep.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// dialCore dials (with retries) and starts a fresh connection core.
func (c *Client) dialCore() (*core, error) {
	conn, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	co := &core{
		conn:    conn,
		enc:     c.enc,
		sendCh:  make(chan []byte, c.opts.MaxInFlight),
		done:    make(chan struct{}),
		slots:   make(chan struct{}, c.opts.MaxInFlight),
		pending: make(map[uint64]chan result),
	}
	go co.writeLoop(bufio.NewWriter(conn))
	go co.readLoop(bufio.NewReaderSize(conn, 64*1024))
	return co, nil
}

// getCore returns a usable connection core, transparently dialing a new
// connection when the current one has failed. Concurrent callers share
// one redial (single-flight); they block until it finishes and share its
// outcome.
func (c *Client) getCore() (*core, error) {
	for {
		if c.closed.Load() {
			return nil, ErrClosed
		}
		c.coreMu.Lock()
		co, redial := c.cur, c.redialing
		c.coreMu.Unlock()
		if co != nil && !co.dead.Load() {
			return co, nil
		}
		if redial != nil {
			<-redial
			c.coreMu.Lock()
			co, err := c.cur, c.dialErr
			c.coreMu.Unlock()
			if err != nil {
				return nil, err
			}
			if co != nil && !co.dead.Load() {
				return co, nil
			}
			continue
		}
		// Become the redialer, unless someone else already did.
		c.coreMu.Lock()
		if c.redialing != nil || c.cur != co {
			c.coreMu.Unlock()
			continue
		}
		ch := make(chan struct{})
		c.redialing = ch
		c.coreMu.Unlock()
		nc, err := c.dialCore()
		c.coreMu.Lock()
		c.dialErr = err
		if err == nil {
			c.cur = nc
		}
		c.redialing = nil
		c.coreMu.Unlock()
		close(ch)
		if err != nil {
			return nil, err
		}
		if c.closed.Load() {
			nc.shutdown()
			return nil, ErrClosed
		}
		return nc, nil
	}
}

// Close closes the underlying connection; in-flight calls fail with
// ErrClosed and subsequent calls do not reconnect.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.v1 {
		return c.conn.Close()
	}
	c.coreMu.Lock()
	co := c.cur
	c.coreMu.Unlock()
	if co != nil {
		co.shutdown()
	}
	return nil
}

// shutdown stops the core's goroutines and fails its in-flight calls.
func (co *core) shutdown() {
	co.closeOnce.Do(func() { close(co.done) })
	co.fail(ErrClosed)
}

// writeLoop streams encoded frames onto the socket, flushing only when the
// send queue is momentarily empty so a pipelined burst pays one syscall.
func (co *core) writeLoop(bw *bufio.Writer) {
	for {
		select {
		case buf := <-co.sendCh:
			if _, err := bw.Write(buf); err != nil {
				co.fail(fmt.Errorf("client: send: %w", err))
				return
			}
			if len(co.sendCh) == 0 {
				if err := bw.Flush(); err != nil {
					co.fail(fmt.Errorf("client: send: %w", err))
					return
				}
			}
		case <-co.done:
			return
		}
	}
}

// readLoop demultiplexes response frames to their waiting callers by
// request ID. A first byte that is not the frame magic means the server
// spoke line JSON at us (e.g. the too-many-connections rejection); its
// error is surfaced as the connection error.
func (co *core) readLoop(br *bufio.Reader) {
	for {
		first, err := br.Peek(1)
		if err != nil {
			co.fail(fmt.Errorf("client: recv: %w", err))
			return
		}
		if first[0] != wire.Magic {
			line, err := br.ReadBytes('\n')
			var resp wire.Response
			if jerr := json.Unmarshal(line, &resp); jerr == nil && resp.Err != "" {
				co.fail(errors.New(resp.Err))
			} else if err != nil {
				co.fail(fmt.Errorf("client: recv: %w", err))
			} else {
				co.fail(fmt.Errorf("client: recv: unframed response %q", line))
			}
			return
		}
		f, err := wire.ReadFrame(br, wire.MaxFrameBytes)
		if err != nil {
			co.fail(fmt.Errorf("client: recv: %w", err))
			return
		}
		co.deliver(f.ID, decodeResponseFrame(f))
	}
}

// decodeResponseFrame turns one response frame into a result, honouring
// the frame's own encoding byte (the server may mirror or force either).
func decodeResponseFrame(f *wire.Frame) result {
	switch f.Type {
	case wire.FrameResult:
		if f.Encoding == wire.EncBinary {
			t, err := wire.DecodeTypedResponse(f.Payload)
			if err != nil {
				return result{err: fmt.Errorf("client: bad response: %w", err)}
			}
			return result{resp: t.Response()}
		}
		var resp wire.Response
		if err := json.Unmarshal(f.Payload, &resp); err != nil {
			return result{err: fmt.Errorf("client: bad response: %w", err)}
		}
		return result{resp: &resp}
	case wire.FrameBatchResult:
		if f.Encoding == wire.EncBinary {
			ts, err := wire.DecodeTypedBatch(f.Payload)
			if err != nil {
				return result{err: fmt.Errorf("client: bad batch response: %w", err)}
			}
			resps := make([]wire.Response, len(ts))
			for i, t := range ts {
				resps[i] = *t.Response()
			}
			return result{batch: resps}
		}
		var br wire.BatchResponse
		if err := json.Unmarshal(f.Payload, &br); err != nil {
			return result{err: fmt.Errorf("client: bad batch response: %w", err)}
		}
		return result{batch: br.Resps}
	default:
		return result{err: fmt.Errorf("client: unknown response frame type 0x%02x", f.Type)}
	}
}

// deliver hands a result to the caller registered under id. The in-flight
// slot is released by whoever removes the pending entry — here, or in
// abandon when the caller's context expired first (then the late response
// is simply dropped).
func (co *core) deliver(id uint64, res result) {
	co.pendMu.Lock()
	ch, ok := co.pending[id]
	if ok {
		delete(co.pending, id)
	}
	co.pendMu.Unlock()
	if !ok {
		return
	}
	<-co.slots
	ch <- res // buffered; never blocks
}

// fail marks the core broken, closes its connection, and fails every
// pending call. Transport errors are wrapped so callers can test
// errors.Is(err, ErrConnClosed); a caller-initiated Close keeps ErrClosed.
func (co *core) fail(err error) {
	if err != ErrClosed && !errors.Is(err, ErrConnClosed) {
		err = fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
	co.dead.Store(true)
	co.pendMu.Lock()
	if co.connErr == nil {
		co.connErr = err
	} else {
		err = co.connErr
	}
	pend := co.pending
	co.pending = make(map[uint64]chan result)
	co.pendMu.Unlock()
	co.conn.Close()
	for range pend {
		<-co.slots
	}
	for _, ch := range pend {
		ch <- result{err: err}
	}
}

// Pending is an in-flight request started by DoAsync or ExecBatchAsync;
// Wait blocks for its response. It stays bound to the connection that
// carried it even if the client reconnects.
type Pending struct {
	co    *core
	id    uint64
	ch    chan result
	batch bool
}

// Wait blocks until the response arrives.
func (p *Pending) Wait() (*wire.Response, error) { return p.WaitContext(context.Background()) }

// WaitContext blocks until the response arrives or ctx is done. On ctx
// expiry the request is abandoned: its slot is freed, the connection stays
// usable, and the late response — identified by its request ID — is
// discarded when it lands.
func (p *Pending) WaitContext(ctx context.Context) (*wire.Response, error) {
	res, err := p.waitContext(ctx)
	if err != nil {
		return nil, err
	}
	return res.resp, nil
}

func (p *Pending) waitContext(ctx context.Context) (result, error) {
	select {
	case res := <-p.ch:
		if res.err != nil {
			return result{}, res.err
		}
		return res, nil
	case <-ctx.Done():
		p.co.abandon(p.id)
		return result{}, ctx.Err()
	}
}

// abandon forgets an in-flight request whose caller gave up.
func (co *core) abandon(id uint64) {
	co.pendMu.Lock()
	_, ok := co.pending[id]
	if ok {
		delete(co.pending, id)
	}
	co.pendMu.Unlock()
	if ok {
		<-co.slots
	}
}

// send encodes and enqueues one request frame, returning its Pending.
func (co *core) send(ctx context.Context, ftype wire.FrameType, payload []byte) (*Pending, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case co.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-co.done:
		return nil, co.errOr(ErrClosed)
	}
	co.pendMu.Lock()
	if co.connErr != nil {
		err := co.connErr
		co.pendMu.Unlock()
		<-co.slots
		return nil, err
	}
	co.nextID++
	id := co.nextID
	ch := make(chan result, 1)
	co.pending[id] = ch
	co.pendMu.Unlock()
	frame := wire.AppendFrame(nil, &wire.Frame{
		Version: wire.V2, Encoding: co.enc, Type: ftype, ID: id, Payload: payload})
	select {
	case co.sendCh <- frame:
	case <-co.done:
		co.abandon(id)
		return nil, co.errOr(ErrClosed)
	}
	return &Pending{co: co, id: id, ch: ch, batch: ftype == wire.FrameBatch}, nil
}

func (co *core) errOr(fallback error) error {
	co.pendMu.Lock()
	defer co.pendMu.Unlock()
	if co.connErr != nil {
		return co.connErr
	}
	return fallback
}

func (c *Client) encodeExec(q string) ([]byte, error) {
	if c.enc == wire.EncBinary {
		return wire.AppendRequest(nil, q), nil
	}
	return json.Marshal(wire.Request{Q: q})
}

// Do sends one request and waits for its response. It returns an error
// only for transport problems; server-side errors come back in
// Response.Err (use Query/Exec for calls that fold those into err).
func (c *Client) Do(q string) (*wire.Response, error) {
	return c.DoContext(context.Background(), q)
}

// DoContext is Do with a per-request deadline. On wire v2 a timed-out
// request is abandoned without stranding the connection: the slot is
// freed and the late response is dropped by ID. On wire v1 the protocol
// has no request IDs, so a timeout or cancellation closes and poisons the
// connection (subsequent calls fail fast with ErrConnClosed).
func (c *Client) DoContext(ctx context.Context, q string) (*wire.Response, error) {
	if c.v1 {
		return c.doV1(ctx, q)
	}
	p, err := c.DoAsyncContext(ctx, q)
	if err != nil {
		return nil, err
	}
	return p.WaitContext(ctx)
}

// DoAsync enqueues one request on the pipeline and returns immediately;
// call Wait on the result. Not available on wire v1.
func (c *Client) DoAsync(q string) (*Pending, error) {
	return c.DoAsyncContext(context.Background(), q)
}

// DoAsyncContext is DoAsync honouring ctx while waiting for a free
// in-flight slot.
func (c *Client) DoAsyncContext(ctx context.Context, q string) (*Pending, error) {
	if c.v1 {
		return nil, errors.New("client: DoAsync requires wire v2")
	}
	payload, err := c.encodeExec(q)
	if err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	co, err := c.getCore()
	if err != nil {
		return nil, err
	}
	return co.send(ctx, wire.FrameExec, payload)
}

// ExecBatch ships qs as one batch frame and returns one Response per
// statement (Resps[i].Err carries statement i's error; a failing statement
// does not stop the rest). On wire v1 it degrades to sequential Do calls.
func (c *Client) ExecBatch(qs []string) ([]wire.Response, error) {
	return c.ExecBatchContext(context.Background(), qs)
}

// ExecBatchContext is ExecBatch with a deadline.
func (c *Client) ExecBatchContext(ctx context.Context, qs []string) ([]wire.Response, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if c.v1 {
		resps := make([]wire.Response, 0, len(qs))
		for _, q := range qs {
			resp, err := c.doV1(ctx, q)
			if err != nil {
				return resps, err
			}
			resps = append(resps, *resp)
		}
		return resps, nil
	}
	var payload []byte
	if c.enc == wire.EncBinary {
		payload = wire.AppendBatchRequest(nil, qs)
	} else {
		raw, err := json.Marshal(wire.BatchRequest{Qs: qs})
		if err != nil {
			return nil, fmt.Errorf("client: send: %w", err)
		}
		payload = raw
	}
	co, err := c.getCore()
	if err != nil {
		return nil, err
	}
	p, err := co.send(ctx, wire.FrameBatch, payload)
	if err != nil {
		return nil, err
	}
	res, err := p.waitContext(ctx)
	if err != nil {
		return nil, err
	}
	if res.batch == nil {
		// A protocol-level failure (oversized batch frame, malformed
		// payload, version mismatch) is answered with a single error
		// response; surface its message — the connection stays usable.
		if res.resp != nil && res.resp.Err != "" {
			return nil, errors.New(res.resp.Err)
		}
		return nil, errors.New("client: batch request answered by non-batch response")
	}
	return res.batch, nil
}

// doV1 is the legacy lockstep round-trip. The line protocol has no
// request IDs, so once a request is on the wire the only way to honour
// ctx is to close the connection — a late response could never be told
// apart from the next call's. The watcher goroutine does exactly that,
// and the resulting read error poisons the client.
func (c *Client) doV1(ctx context.Context, q string) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.v1Err != nil {
		return nil, c.v1Err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				c.conn.Close()
			case <-stop:
			}
		}()
	}
	fail := func(stage string, err error) (*wire.Response, error) {
		// Any transport error desyncs the lockstep protocol; close and
		// poison the client so later calls fail fast instead of reading
		// a stale response.
		if cause := ctx.Err(); cause != nil {
			err = cause
		}
		c.conn.Close()
		c.v1Err = fmt.Errorf("client: %s: %v (v1 stream desynced: %w)", stage, err, ErrConnClosed)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, c.v1Err
	}
	if err := c.jenc.Encode(wire.Request{Q: q}); err != nil {
		return fail("send", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail("send", err)
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return fail("recv", err)
	}
	var resp wire.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return fail("bad response", err)
	}
	return &resp, nil
}

// Query runs a script and returns the final result set. A server-side
// error becomes the returned error.
func (c *Client) Query(q string) (cols []string, rows [][]string, err error) {
	resp, err := c.Do(q)
	if err != nil {
		return nil, nil, err
	}
	if resp.Err != "" {
		return nil, nil, errors.New(resp.Err)
	}
	return resp.Cols, resp.Rows, nil
}

// QueryValues runs a script and returns the final result set as typed
// cells. It requires the binary encoding (the default): under EncJSON the
// wire carries rendered literals only.
func (c *Client) QueryValues(q string) (cols []string, rows [][]value.Value, err error) {
	resp, err := c.Do(q)
	if err != nil {
		return nil, nil, err
	}
	if resp.Err != "" {
		return nil, nil, errors.New(resp.Err)
	}
	if resp.Values == nil && len(resp.Rows) > 0 {
		return nil, nil, errors.New("client: QueryValues requires the binary encoding")
	}
	return resp.Cols, resp.Values, nil
}

// Exec runs a script for effect and returns the final status message. A
// server-side error becomes the returned error.
func (c *Client) Exec(q string) (msg string, err error) {
	resp, err := c.Do(q)
	if err != nil {
		return "", err
	}
	if resp.Err != "" {
		return "", errors.New(resp.Err)
	}
	return resp.Msg, nil
}

// QueryInt runs a script whose final statement yields a single cell and
// parses it as an integer — the common COUNT(*) shape in tests and
// benchmarks.
func (c *Client) QueryInt(q string) (int64, error) {
	_, rows, err := c.Query(q)
	if err != nil {
		return 0, err
	}
	if len(rows) != 1 || len(rows[0]) != 1 {
		return 0, fmt.Errorf("client: QueryInt wants a 1x1 result, got %dx%d", len(rows), lenFirst(rows))
	}
	n, err := strconv.ParseInt(rows[0][0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("client: QueryInt: %w", err)
	}
	return n, nil
}

func lenFirst(rows [][]string) int {
	if len(rows) == 0 {
		return 0
	}
	return len(rows[0])
}
