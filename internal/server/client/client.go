// Package client is the Go client for qqld. A Client owns one TCP
// connection and, on the default wire v2 protocol, runs an asynchronous
// core: a writer goroutine streams request frames onto the socket while a
// reader goroutine demultiplexes responses by request ID, so many requests
// can be in flight on the one connection at once (pipelining). Do, Query
// and Exec remain synchronous wrappers — each sends and waits for its own
// response — but concurrent callers no longer serialize on a round-trip
// mutex, and DoAsync/ExecBatch expose the pipeline directly. With
// Options{Version: 1} the Client instead speaks the legacy line-JSON
// protocol, where calls are serialized in lockstep.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/server/wire"
	"repro/internal/value"
)

// Options tunes a connection; the zero value means wire v2, binary
// payloads, pipeline depth 64, 5s dial timeout.
type Options struct {
	// Version selects the protocol: 2 (default, framed + pipelined) or 1
	// (legacy line-delimited JSON, one request in flight).
	Version int
	// Encoding selects the v2 request payload encoding: "binary"
	// (default) or "json". Responses are decoded by their frame header,
	// whatever the server chose.
	Encoding string
	// MaxInFlight caps the requests this client keeps in flight; further
	// sends block until responses drain. Default 64.
	MaxInFlight int
	// DialTimeout bounds the TCP connect. Default 5s.
	DialTimeout time.Duration
}

// ErrClosed is returned for calls on a closed client.
var ErrClosed = errors.New("client: closed")

// result is one demultiplexed reply.
type result struct {
	resp  *wire.Response
	batch []wire.Response
	err   error
}

// Client is one reusable connection to a qqld server. It is safe for
// concurrent use; on wire v2, concurrent calls pipeline onto the socket
// instead of queueing behind each other's round-trips.
type Client struct {
	conn net.Conn
	enc  wire.Encoding

	// v1 (legacy) state: one request/response round-trip at a time.
	v1   bool
	mu   sync.Mutex
	br   *bufio.Reader
	bw   *bufio.Writer
	jenc *json.Encoder

	// v2 async core.
	sendCh    chan []byte   // encoded frames for the writer goroutine
	done      chan struct{} // closed by Close; stops the writer
	closeOnce sync.Once
	slots     chan struct{} // in-flight semaphore (cap MaxInFlight)

	pendMu  sync.Mutex
	pending map[uint64]chan result
	nextID  uint64
	connErr error // first transport error; sticky
}

// Dial connects to a qqld server at addr ("host:port") with default
// Options: wire v2, binary encoding, pipelined.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, Options{DialTimeout: timeout})
}

// DialOptions connects with explicit protocol options.
func DialOptions(addr string, o Options) (*Client, error) {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	var enc wire.Encoding
	switch o.Encoding {
	case "", "binary":
		enc = wire.EncBinary
	case "json":
		enc = wire.EncJSON
	default:
		return nil, fmt.Errorf("client: unknown encoding %q (want binary or json)", o.Encoding)
	}
	conn, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, enc: enc}
	if o.Version == 1 {
		c.v1 = true
		c.bw = bufio.NewWriter(conn)
		c.br = bufio.NewReaderSize(conn, 64*1024)
		c.jenc = json.NewEncoder(c.bw)
		return c, nil
	}
	c.sendCh = make(chan []byte, o.MaxInFlight)
	c.done = make(chan struct{})
	c.slots = make(chan struct{}, o.MaxInFlight)
	c.pending = make(map[uint64]chan result)
	go c.writeLoop(bufio.NewWriter(conn))
	go c.readLoop(bufio.NewReaderSize(conn, 64*1024))
	return c, nil
}

// Close closes the underlying connection; in-flight calls fail with
// ErrClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	if !c.v1 {
		c.closeOnce.Do(func() { close(c.done) })
		c.fail(ErrClosed)
	}
	return err
}

// writeLoop streams encoded frames onto the socket, flushing only when the
// send queue is momentarily empty so a pipelined burst pays one syscall.
func (c *Client) writeLoop(bw *bufio.Writer) {
	for {
		select {
		case buf := <-c.sendCh:
			if _, err := bw.Write(buf); err != nil {
				c.fail(fmt.Errorf("client: send: %w", err))
				return
			}
			if len(c.sendCh) == 0 {
				if err := bw.Flush(); err != nil {
					c.fail(fmt.Errorf("client: send: %w", err))
					return
				}
			}
		case <-c.done:
			return
		}
	}
}

// readLoop demultiplexes response frames to their waiting callers by
// request ID. A first byte that is not the frame magic means the server
// spoke line JSON at us (e.g. the too-many-connections rejection); its
// error is surfaced as the connection error.
func (c *Client) readLoop(br *bufio.Reader) {
	for {
		first, err := br.Peek(1)
		if err != nil {
			c.fail(fmt.Errorf("client: recv: %w", err))
			return
		}
		if first[0] != wire.Magic {
			line, err := br.ReadBytes('\n')
			var resp wire.Response
			if jerr := json.Unmarshal(line, &resp); jerr == nil && resp.Err != "" {
				c.fail(errors.New(resp.Err))
			} else if err != nil {
				c.fail(fmt.Errorf("client: recv: %w", err))
			} else {
				c.fail(fmt.Errorf("client: recv: unframed response %q", line))
			}
			return
		}
		f, err := wire.ReadFrame(br, wire.MaxFrameBytes)
		if err != nil {
			c.fail(fmt.Errorf("client: recv: %w", err))
			return
		}
		c.deliver(f.ID, decodeResponseFrame(f))
	}
}

// decodeResponseFrame turns one response frame into a result, honouring
// the frame's own encoding byte (the server may mirror or force either).
func decodeResponseFrame(f *wire.Frame) result {
	switch f.Type {
	case wire.FrameResult:
		if f.Encoding == wire.EncBinary {
			t, err := wire.DecodeTypedResponse(f.Payload)
			if err != nil {
				return result{err: fmt.Errorf("client: bad response: %w", err)}
			}
			return result{resp: t.Response()}
		}
		var resp wire.Response
		if err := json.Unmarshal(f.Payload, &resp); err != nil {
			return result{err: fmt.Errorf("client: bad response: %w", err)}
		}
		return result{resp: &resp}
	case wire.FrameBatchResult:
		if f.Encoding == wire.EncBinary {
			ts, err := wire.DecodeTypedBatch(f.Payload)
			if err != nil {
				return result{err: fmt.Errorf("client: bad batch response: %w", err)}
			}
			resps := make([]wire.Response, len(ts))
			for i, t := range ts {
				resps[i] = *t.Response()
			}
			return result{batch: resps}
		}
		var br wire.BatchResponse
		if err := json.Unmarshal(f.Payload, &br); err != nil {
			return result{err: fmt.Errorf("client: bad batch response: %w", err)}
		}
		return result{batch: br.Resps}
	default:
		return result{err: fmt.Errorf("client: unknown response frame type 0x%02x", f.Type)}
	}
}

// deliver hands a result to the caller registered under id. The in-flight
// slot is released by whoever removes the pending entry — here, or in
// abandon when the caller's context expired first (then the late response
// is simply dropped).
func (c *Client) deliver(id uint64, res result) {
	c.pendMu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.pendMu.Unlock()
	if !ok {
		return
	}
	<-c.slots
	ch <- res // buffered; never blocks
}

// fail marks the connection broken, closes it, and fails every pending
// call.
func (c *Client) fail(err error) {
	c.pendMu.Lock()
	if c.connErr == nil {
		c.connErr = err
	} else {
		err = c.connErr
	}
	pend := c.pending
	c.pending = make(map[uint64]chan result)
	c.pendMu.Unlock()
	c.conn.Close()
	for range pend {
		<-c.slots
	}
	for _, ch := range pend {
		ch <- result{err: err}
	}
}

// Pending is an in-flight request started by DoAsync or ExecBatchAsync;
// Wait blocks for its response.
type Pending struct {
	c     *Client
	id    uint64
	ch    chan result
	batch bool
}

// Wait blocks until the response arrives.
func (p *Pending) Wait() (*wire.Response, error) { return p.WaitContext(context.Background()) }

// WaitContext blocks until the response arrives or ctx is done. On ctx
// expiry the request is abandoned: its slot is freed, the connection stays
// usable, and the late response — identified by its request ID — is
// discarded when it lands.
func (p *Pending) WaitContext(ctx context.Context) (*wire.Response, error) {
	res, err := p.waitContext(ctx)
	if err != nil {
		return nil, err
	}
	return res.resp, nil
}

func (p *Pending) waitContext(ctx context.Context) (result, error) {
	select {
	case res := <-p.ch:
		if res.err != nil {
			return result{}, res.err
		}
		return res, nil
	case <-ctx.Done():
		p.c.abandon(p.id)
		return result{}, ctx.Err()
	}
}

// abandon forgets an in-flight request whose caller gave up.
func (c *Client) abandon(id uint64) {
	c.pendMu.Lock()
	_, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.pendMu.Unlock()
	if ok {
		<-c.slots
	}
}

// send encodes and enqueues one request frame, returning its Pending.
func (c *Client) send(ctx context.Context, ftype wire.FrameType, payload []byte) (*Pending, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case c.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
		return nil, c.errOr(ErrClosed)
	}
	c.pendMu.Lock()
	if c.connErr != nil {
		err := c.connErr
		c.pendMu.Unlock()
		<-c.slots
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan result, 1)
	c.pending[id] = ch
	c.pendMu.Unlock()
	frame := wire.AppendFrame(nil, &wire.Frame{
		Version: wire.V2, Encoding: c.enc, Type: ftype, ID: id, Payload: payload})
	select {
	case c.sendCh <- frame:
	case <-c.done:
		c.abandon(id)
		return nil, c.errOr(ErrClosed)
	}
	return &Pending{c: c, id: id, ch: ch, batch: ftype == wire.FrameBatch}, nil
}

func (c *Client) errOr(fallback error) error {
	c.pendMu.Lock()
	defer c.pendMu.Unlock()
	if c.connErr != nil {
		return c.connErr
	}
	return fallback
}

func (c *Client) encodeExec(q string) ([]byte, error) {
	if c.enc == wire.EncBinary {
		return wire.AppendRequest(nil, q), nil
	}
	return json.Marshal(wire.Request{Q: q})
}

// Do sends one request and waits for its response. It returns an error
// only for transport problems; server-side errors come back in
// Response.Err (use Query/Exec for calls that fold those into err).
func (c *Client) Do(q string) (*wire.Response, error) {
	return c.DoContext(context.Background(), q)
}

// DoContext is Do with a per-request deadline. On wire v2 a timed-out
// request is abandoned without stranding the connection: the slot is
// freed and the late response is dropped by ID. On wire v1 the protocol
// has no request IDs, so a timeout poisons the connection (subsequent
// calls fail).
func (c *Client) DoContext(ctx context.Context, q string) (*wire.Response, error) {
	if c.v1 {
		return c.doV1(ctx, q)
	}
	p, err := c.DoAsyncContext(ctx, q)
	if err != nil {
		return nil, err
	}
	return p.WaitContext(ctx)
}

// DoAsync enqueues one request on the pipeline and returns immediately;
// call Wait on the result. Not available on wire v1.
func (c *Client) DoAsync(q string) (*Pending, error) {
	return c.DoAsyncContext(context.Background(), q)
}

// DoAsyncContext is DoAsync honouring ctx while waiting for a free
// in-flight slot.
func (c *Client) DoAsyncContext(ctx context.Context, q string) (*Pending, error) {
	if c.v1 {
		return nil, errors.New("client: DoAsync requires wire v2")
	}
	payload, err := c.encodeExec(q)
	if err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	return c.send(ctx, wire.FrameExec, payload)
}

// ExecBatch ships qs as one batch frame and returns one Response per
// statement (Resps[i].Err carries statement i's error; a failing statement
// does not stop the rest). On wire v1 it degrades to sequential Do calls.
func (c *Client) ExecBatch(qs []string) ([]wire.Response, error) {
	return c.ExecBatchContext(context.Background(), qs)
}

// ExecBatchContext is ExecBatch with a deadline.
func (c *Client) ExecBatchContext(ctx context.Context, qs []string) ([]wire.Response, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if c.v1 {
		resps := make([]wire.Response, 0, len(qs))
		for _, q := range qs {
			resp, err := c.doV1(ctx, q)
			if err != nil {
				return resps, err
			}
			resps = append(resps, *resp)
		}
		return resps, nil
	}
	var payload []byte
	if c.enc == wire.EncBinary {
		payload = wire.AppendBatchRequest(nil, qs)
	} else {
		raw, err := json.Marshal(wire.BatchRequest{Qs: qs})
		if err != nil {
			return nil, fmt.Errorf("client: send: %w", err)
		}
		payload = raw
	}
	p, err := c.send(ctx, wire.FrameBatch, payload)
	if err != nil {
		return nil, err
	}
	res, err := p.waitContext(ctx)
	if err != nil {
		return nil, err
	}
	if res.batch == nil {
		// A protocol-level failure (oversized batch frame, malformed
		// payload, version mismatch) is answered with a single error
		// response; surface its message — the connection stays usable.
		if res.resp != nil && res.resp.Err != "" {
			return nil, errors.New(res.resp.Err)
		}
		return nil, errors.New("client: batch request answered by non-batch response")
	}
	return res.batch, nil
}

// doV1 is the legacy lockstep round-trip.
func (c *Client) doV1(ctx context.Context, q string) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.connErr != nil {
		return nil, c.connErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
		defer c.conn.SetDeadline(time.Time{})
	}
	fail := func(stage string, err error) (*wire.Response, error) {
		// Any transport error desyncs the lockstep protocol; poison the
		// client so later calls don't read a stale response.
		c.connErr = fmt.Errorf("client: %s: %w", stage, err)
		return nil, c.connErr
	}
	if err := c.jenc.Encode(wire.Request{Q: q}); err != nil {
		return fail("send", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail("send", err)
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return fail("recv", err)
	}
	var resp wire.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return fail("bad response", err)
	}
	return &resp, nil
}

// Query runs a script and returns the final result set. A server-side
// error becomes the returned error.
func (c *Client) Query(q string) (cols []string, rows [][]string, err error) {
	resp, err := c.Do(q)
	if err != nil {
		return nil, nil, err
	}
	if resp.Err != "" {
		return nil, nil, errors.New(resp.Err)
	}
	return resp.Cols, resp.Rows, nil
}

// QueryValues runs a script and returns the final result set as typed
// cells. It requires the binary encoding (the default): under EncJSON the
// wire carries rendered literals only.
func (c *Client) QueryValues(q string) (cols []string, rows [][]value.Value, err error) {
	resp, err := c.Do(q)
	if err != nil {
		return nil, nil, err
	}
	if resp.Err != "" {
		return nil, nil, errors.New(resp.Err)
	}
	if resp.Values == nil && len(resp.Rows) > 0 {
		return nil, nil, errors.New("client: QueryValues requires the binary encoding")
	}
	return resp.Cols, resp.Values, nil
}

// Exec runs a script for effect and returns the final status message. A
// server-side error becomes the returned error.
func (c *Client) Exec(q string) (msg string, err error) {
	resp, err := c.Do(q)
	if err != nil {
		return "", err
	}
	if resp.Err != "" {
		return "", errors.New(resp.Err)
	}
	return resp.Msg, nil
}

// QueryInt runs a script whose final statement yields a single cell and
// parses it as an integer — the common COUNT(*) shape in tests and
// benchmarks.
func (c *Client) QueryInt(q string) (int64, error) {
	_, rows, err := c.Query(q)
	if err != nil {
		return 0, err
	}
	if len(rows) != 1 || len(rows[0]) != 1 {
		return 0, fmt.Errorf("client: QueryInt wants a 1x1 result, got %dx%d", len(rows), lenFirst(rows))
	}
	n, err := strconv.ParseInt(rows[0][0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("client: QueryInt: %w", err)
	}
	return n, nil
}

func lenFirst(rows [][]string) int {
	if len(rows) == 0 {
		return 0
	}
	return len(rows[0])
}
