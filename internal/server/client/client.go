// Package client is the Go client for qqld: it dials the server's TCP
// address and exchanges line-delimited JSON per package wire. A Client owns
// one connection and reuses it for every call; calls are serialized with a
// mutex, so a Client is safe for concurrent use, though throughput-minded
// callers (e.g. the benchrunner) open one Client per worker.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/server/wire"
)

// Client is one reusable connection to a qqld server.
type Client struct {
	mu   sync.Mutex // serializes request/response roundtrips on the conn
	conn net.Conn
	br   *bufio.Reader
	enc  *json.Encoder
	bw   *bufio.Writer
}

// Dial connects to a qqld server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	bw := bufio.NewWriter(conn)
	br := bufio.NewReaderSize(conn, 64*1024)
	return &Client{
		conn: conn,
		br:   br,
		bw:   bw,
		enc:  json.NewEncoder(bw),
	}, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request line and reads one response line. It returns an
// error only for transport problems; server-side errors come back in
// Response.Err (use Query/Exec for calls that fold those into err).
func (c *Client) Do(q string) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(wire.Request{Q: q}); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("client: recv: %w", err)
	}
	var resp wire.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("client: bad response: %w", err)
	}
	return &resp, nil
}

// Query runs a script and returns the final result set. A server-side
// error becomes the returned error.
func (c *Client) Query(q string) (cols []string, rows [][]string, err error) {
	resp, err := c.Do(q)
	if err != nil {
		return nil, nil, err
	}
	if resp.Err != "" {
		return nil, nil, errors.New(resp.Err)
	}
	return resp.Cols, resp.Rows, nil
}

// Exec runs a script for effect and returns the final status message. A
// server-side error becomes the returned error.
func (c *Client) Exec(q string) (msg string, err error) {
	resp, err := c.Do(q)
	if err != nil {
		return "", err
	}
	if resp.Err != "" {
		return "", errors.New(resp.Err)
	}
	return resp.Msg, nil
}

// QueryInt runs a script whose final statement yields a single cell and
// parses it as an integer — the common COUNT(*) shape in tests and
// benchmarks.
func (c *Client) QueryInt(q string) (int64, error) {
	_, rows, err := c.Query(q)
	if err != nil {
		return 0, err
	}
	if len(rows) != 1 || len(rows[0]) != 1 {
		return 0, fmt.Errorf("client: QueryInt wants a 1x1 result, got %dx%d", len(rows), lenFirst(rows))
	}
	n, err := strconv.ParseInt(rows[0][0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("client: QueryInt: %w", err)
	}
	return n, nil
}

func lenFirst(rows [][]string) int {
	if len(rows) == 0 {
		return 0
	}
	return len(rows[0])
}
