package client

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/storage"
)

// freeAddr reserves a TCP port and immediately releases it, returning the
// address: a place nothing is listening right now but a later listener
// can bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDialRetryExhausted: with nothing listening, dial retries the
// configured number of times with backoff between attempts, then reports
// the attempt count.
func TestDialRetryExhausted(t *testing.T) {
	addr := freeAddr(t)
	start := time.Now()
	_, err := DialOptions(addr, Options{Retry: Retry{Attempts: 3, Backoff: 20 * time.Millisecond}})
	if err == nil {
		t.Fatal("dial to a dead port succeeded")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("error %q does not report the attempt count", err)
	}
	// Two backoff waits of 20ms and 40ms, each jittered down to no less
	// than half: at least 30ms must have passed.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("3 attempts finished in %v; backoff not applied", elapsed)
	}
}

// TestDialRetrySucceedsOnceServerUp: the server comes up between
// attempts; the dial's retry loop finds it.
func TestDialRetrySucceedsOnceServerUp(t *testing.T) {
	addr := freeAddr(t)
	go func() {
		time.Sleep(50 * time.Millisecond)
		srv := server.New(storage.NewCatalog(), server.Config{Addr: addr, MaxConns: 8})
		if err := srv.Listen(); err != nil {
			t.Errorf("late listen: %v", err)
			return
		}
		go srv.Serve()
	}()
	c, err := DialOptions(addr, Options{Retry: Retry{Attempts: 40, Backoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}})
	if err != nil {
		t.Fatalf("dial never reached the late server: %v", err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE t (a int)`); err != nil {
		t.Fatal(err)
	}
}

// TestReconnectAfterServerRestart: a v2 client outlives its server. The
// call that catches the broken connection fails with an error typed
// ErrConnClosed (it is never replayed); subsequent calls transparently
// dial the restarted server.
func TestReconnectAfterServerRestart(t *testing.T) {
	srv1 := server.New(storage.NewCatalog(), server.Config{Addr: "127.0.0.1:0", MaxConns: 8})
	if err := srv1.Listen(); err != nil {
		t.Fatal(err)
	}
	go srv1.Serve()
	addr := srv1.Addr().String()

	c, err := DialOptions(addr, Options{Retry: Retry{Attempts: 20, Backoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE t (a int)`); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	srv2 := server.New(storage.NewCatalog(), server.Config{Addr: addr, MaxConns: 8})
	if err := srv2.Listen(); err != nil {
		t.Fatal(err)
	}
	go srv2.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv2.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := c.Do(`CREATE TABLE t2 (a int)`)
		if err == nil && resp != nil {
			break // transport works again; server-side Err is irrelevant here
		}
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("interim failure not typed ErrConnClosed: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reconnected: %v", err)
		}
	}
	// The reconnected client is fully functional.
	if _, err := c.Exec(`INSERT INTO t2 VALUES (7)`); err != nil {
		t.Fatal(err)
	}
	n, err := c.QueryInt(`SELECT COUNT(*) AS n FROM t2`)
	if err != nil || n != 1 {
		t.Fatalf("count after reconnect: %d, %v", n, err)
	}
}

// TestConnClosedTyped: a server that drops the connection mid-request
// surfaces an error matching errors.Is(err, ErrConnClosed).
func TestConnClosedTyped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			buf := make([]byte, 64)
			conn.Read(buf)
			conn.Close()
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(`SELECT 1`); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("want ErrConnClosed, got %v", err)
	}
}

// stalledV1Server accepts connections and reads forever without ever
// answering — the shape of a wedged legacy server.
func stalledV1Server(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()
	return ln.Addr().String()
}

// TestV1TimeoutPoisonsConnection: on the line protocol a timed-out
// request cannot be abandoned in place — there are no request IDs to
// discard the late response by — so DoContext must return promptly at the
// deadline and the NEXT call must fail fast with ErrConnClosed instead of
// reading the stale response.
func TestV1TimeoutPoisonsConnection(t *testing.T) {
	addr := stalledV1Server(t)
	c, err := DialOptions(addr, Options{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.DoContext(ctx, `SELECT 1`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("DoContext ignored the deadline for %v", elapsed)
	}

	start = time.Now()
	_, err = c.Do(`SELECT 1`)
	if !errors.Is(err, ErrConnClosed) {
		t.Fatalf("second call after timeout: want ErrConnClosed, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("poisoned client took %v to fail", elapsed)
	}
}

// TestV1CancelUnblocks: pure cancellation (no deadline) also unblocks a
// stuck v1 round-trip. This was the PR 3 wart: only deadlines were
// honoured, a cancelled context hung forever.
func TestV1CancelUnblocks(t *testing.T) {
	addr := stalledV1Server(t)
	c, err := DialOptions(addr, Options{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := c.DoContext(ctx, `SELECT 1`)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled DoContext never returned")
	}
	if _, err := c.Do(`SELECT 1`); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("after cancel: want ErrConnClosed, got %v", err)
	}
}
