package client

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/storage"
)

// startServer runs a qqld server on a random port and returns its address;
// shutdown is handled by t.Cleanup.
func startServer(t *testing.T) string {
	t.Helper()
	srv := server.New(storage.NewCatalog(), server.Config{Addr: "127.0.0.1:0", MaxConns: 8})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	})
	return srv.Addr().String()
}

func TestDialExecQuery(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	msg, err := c.Exec(`CREATE TABLE t (a int, b string)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "created table t") {
		t.Errorf("Exec msg = %q", msg)
	}
	if _, err := c.Exec(`INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')`); err != nil {
		t.Fatal(err)
	}
	cols, rows, err := c.Query(`SELECT a, b FROM t WHERE a >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("cols = %v", cols)
	}
	if len(rows) != 2 || rows[0][1] != "'y'" {
		t.Errorf("rows = %v", rows)
	}
	n, err := c.QueryInt(`SELECT COUNT(*) AS n FROM t`)
	if err != nil || n != 3 {
		t.Errorf("QueryInt = %d, %v", n, err)
	}
	// QueryInt rejects non-1x1 shapes.
	if _, err := c.QueryInt(`SELECT a FROM t`); err == nil {
		t.Error("QueryInt over 3 rows should fail")
	}
}

// TestConnectionReuseAfterServerError: a server-side statement error must
// come back as an error without poisoning the connection — the next request
// on the same conn succeeds.
func TestConnectionReuseAfterServerError(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE t (a int)`); err != nil {
		t.Fatal(err)
	}

	// Parse error.
	if _, err := c.Exec(`THIS IS NOT QQL`); err == nil {
		t.Fatal("parse error not surfaced")
	}
	// Unknown-table execution error, via Query.
	_, _, err = c.Query(`SELECT * FROM missing`)
	if err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("unknown table error = %v", err)
	}
	// Do exposes the raw response: the error rides in Response.Err, not err.
	resp, err := c.Do(`SELECT * FROM missing`)
	if err != nil {
		t.Fatalf("Do transport error: %v", err)
	}
	if resp.Err == "" {
		t.Error("Do should carry the server error in Response.Err")
	}
	// Same connection keeps working.
	if _, err := c.Exec(`INSERT INTO t VALUES (42)`); err != nil {
		t.Fatalf("conn dead after error: %v", err)
	}
	n, err := c.QueryInt(`SELECT COUNT(*) AS n FROM t`)
	if err != nil || n != 1 {
		t.Errorf("after-error QueryInt = %d, %v", n, err)
	}
}

func TestDialFailure(t *testing.T) {
	// A port nothing listens on: dial must fail, not hang (timeout path).
	if _, err := DialTimeout("127.0.0.1:1", 500*time.Millisecond); err == nil {
		t.Fatal("dial to dead port should fail")
	}
}
