package client

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/value"
)

// TestLegacyV1ProtocolSuite re-runs the core client flows over the legacy
// line-JSON protocol (Options{Version: 1}) against the v2 server: the
// acceptance criterion that a v1 client passes the existing suite
// unchanged.
func TestLegacyV1ProtocolSuite(t *testing.T) {
	addr := startServer(t)
	c, err := DialOptions(addr, Options{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	msg, err := c.Exec(`CREATE TABLE t (a int, b string)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "created table t") {
		t.Errorf("Exec msg = %q", msg)
	}
	if _, err := c.Exec(`INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')`); err != nil {
		t.Fatal(err)
	}
	cols, rows, err := c.Query(`SELECT a, b FROM t WHERE a >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || len(rows) != 2 || rows[0][1] != "'y'" {
		t.Errorf("cols = %v rows = %v", cols, rows)
	}
	n, err := c.QueryInt(`SELECT COUNT(*) AS n FROM t`)
	if err != nil || n != 3 {
		t.Errorf("QueryInt = %d, %v", n, err)
	}
	// Server-side errors don't poison the legacy connection.
	if _, err := c.Exec(`THIS IS NOT QQL`); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, err := c.Exec(`INSERT INTO t VALUES (4, 'w')`); err != nil {
		t.Fatalf("conn dead after error: %v", err)
	}
	// ExecBatch degrades to sequential round-trips on v1.
	resps, err := c.ExecBatch([]string{
		`INSERT INTO t VALUES (5, 'v')`,
		`SELECT COUNT(*) AS n FROM t`,
	})
	if err != nil || len(resps) != 2 {
		t.Fatalf("v1 ExecBatch = %d resps, %v", len(resps), err)
	}
	if resps[1].Rows[0][0] != "5" {
		t.Errorf("v1 batch count = %v", resps[1].Rows)
	}
	// DoAsync is a v2 feature.
	if _, err := c.DoAsync(`SELECT 1`); err == nil {
		t.Error("DoAsync on v1 should fail")
	}
}

func TestDoAsyncPipeline(t *testing.T) {
	addr := startServer(t)
	c, err := DialOptions(addr, Options{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE p (id string REQUIRED, n int) KEY (id) STRICT`); err != nil {
		t.Fatal(err)
	}
	// Queue a burst without waiting, then collect: responses must match
	// their requests by ID, in order.
	const n = 50
	pend := make([]*Pending, n)
	for i := range pend {
		p, err := c.DoAsync(fmt.Sprintf(`INSERT INTO p VALUES ('k%03d', %d)`, i, i))
		if err != nil {
			t.Fatal(err)
		}
		pend[i] = p
	}
	for i, p := range pend {
		resp, err := p.Wait()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Err != "" {
			t.Fatalf("request %d: %s", i, resp.Err)
		}
	}
	count, err := c.QueryInt(`SELECT COUNT(*) AS n FROM p`)
	if err != nil || count != n {
		t.Errorf("count = %d, %v", count, err)
	}
}

// TestDoContextTimeoutDoesNotStrandConnection: a caller that gives up on a
// slow statement must get ctx's error promptly, and the same connection
// must then serve fresh requests with correctly-matched responses (the
// late response is dropped by ID, not misdelivered).
func TestDoContextTimeoutDoesNotStrandConnection(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE slow (a int, g int)`); err != nil {
		t.Fatal(err)
	}
	// 2000 rows over 5 join-key groups: the skewed self-join COUNT below
	// produces 2000*400 = 800k pairs, comfortably slower than the 5ms
	// deadline.
	ins := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		vals := make([]string, 50)
		for j := range vals {
			n := i*50 + j
			vals[j] = fmt.Sprintf("(%d, %d)", n, n%5)
		}
		ins = append(ins, `INSERT INTO slow VALUES `+strings.Join(vals, ", "))
	}
	if resps, err := c.ExecBatch(ins); err != nil {
		t.Fatal(err)
	} else {
		for _, r := range resps {
			if r.Err != "" {
				t.Fatal(r.Err)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = c.DoContext(ctx, `SELECT COUNT(*) AS n FROM slow a JOIN slow b ON a.g = b.g`)
	if err == nil {
		t.Skip("join finished inside the deadline; timeout path not exercised on this host")
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The connection still works, and the next response is the right one —
	// not the abandoned cross-join's.
	n, err := c.QueryInt(`SELECT COUNT(*) AS n FROM slow`)
	if err != nil || n != 2000 {
		t.Fatalf("after timeout: count = %d, %v (want 2000)", n, err)
	}
	// An already-expired context fails fast without touching the wire.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := c.DoContext(done, `SELECT COUNT(*) AS n FROM slow`); err != context.Canceled {
		t.Errorf("pre-cancelled ctx err = %v", err)
	}
}

func TestQueryValuesTypedCells(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr) // default: binary encoding
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE ty (s string, n int, f float, w time)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO ty VALUES ('it''s', 42, 1.5, t'1991-10-03T00:00:00Z')`); err != nil {
		t.Fatal(err)
	}
	cols, rows, err := c.QueryValues(`SELECT s, n, f, w FROM ty`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 4 || len(rows) != 1 {
		t.Fatalf("shape = %v x %d", cols, len(rows))
	}
	want := []value.Value{
		value.Str("it's"),
		value.Int(42),
		value.Float(1.5),
		value.Time(time.Date(1991, 10, 3, 0, 0, 0, 0, time.UTC)),
	}
	for i, w := range want {
		if rows[0][i].Kind() != w.Kind() || !value.Equal(rows[0][i], w) {
			t.Errorf("cell %d = %v (%v), want %v (%v)", i, rows[0][i], rows[0][i].Kind(), w, w.Kind())
		}
	}
	// The string API renders the same typed cells as QQL literals.
	_, srows, err := c.Query(`SELECT s FROM ty`)
	if err != nil || srows[0][0] != "'it''s'" {
		t.Errorf("literal rendering = %v, %v", srows, err)
	}

	// Under the JSON encoding QueryValues refuses rather than guessing.
	cj, err := DialOptions(addr, Options{Encoding: "json"})
	if err != nil {
		t.Fatal(err)
	}
	defer cj.Close()
	if _, _, err := cj.QueryValues(`SELECT s FROM ty`); err == nil {
		t.Error("QueryValues over JSON encoding should fail")
	}
}

func TestExecBatchPerStatementResults(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resps, err := c.ExecBatch([]string{
		`CREATE TABLE eb (id string REQUIRED, n int) KEY (id) STRICT`,
		`INSERT INTO eb VALUES ('a', 1)`,
		`INSERT INTO eb VALUES ('a', 2)`, // dup key
		`SELECT COUNT(*) AS n FROM eb`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 4 {
		t.Fatalf("got %d responses", len(resps))
	}
	if resps[0].Err != "" || resps[1].Err != "" {
		t.Errorf("setup statements failed: %+v %+v", resps[0], resps[1])
	}
	if resps[2].Err == "" {
		t.Error("duplicate key did not error")
	}
	if resps[3].Err != "" || resps[3].Rows[0][0] != "1" {
		t.Errorf("final count = %+v", resps[3])
	}
	// Empty batch is a no-op.
	if resps, err := c.ExecBatch(nil); err != nil || resps != nil {
		t.Errorf("empty batch = %v, %v", resps, err)
	}
}
