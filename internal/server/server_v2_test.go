package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
)

// TestLegacyLineJSONClientAgainstV2Server is the mixed-version test: a raw
// v1 client — line-delimited JSON with no frame header, what netcat would
// send — must be auto-detected and served by the v2 server.
func TestLegacyLineJSONClientAgainstV2Server(t *testing.T) {
	srv := startServer(t, server.Config{})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	roundtrip := func(q string) wire.Response {
		t.Helper()
		if err := json.NewEncoder(conn).Encode(wire.Request{Q: q}); err != nil {
			t.Fatal(err)
		}
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp wire.Response
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatalf("bad response line %q: %v", line, err)
		}
		return resp
	}

	if resp := roundtrip(`CREATE TABLE t (a int, b string)`); resp.Err != "" {
		t.Fatalf("create: %+v", resp)
	}
	if resp := roundtrip(`INSERT INTO t VALUES (1, 'x'), (2, 'y')`); resp.Err != "" {
		t.Fatalf("insert: %+v", resp)
	}
	resp := roundtrip(`SELECT a, b FROM t WHERE a >= 2`)
	if resp.Err != "" || len(resp.Rows) != 1 || resp.Rows[0][1] != "'y'" {
		t.Fatalf("select: %+v", resp)
	}
	// Errors ride in err and the line connection survives them.
	if resp := roundtrip(`SELECT * FROM missing`); !strings.Contains(resp.Err, "unknown table") {
		t.Fatalf("error response: %+v", resp)
	}
	if resp := roundtrip(`SELECT COUNT(*) AS n FROM t`); resp.Err != "" || resp.Rows[0][0] != "2" {
		t.Fatalf("count after error: %+v", resp)
	}
}

// TestV1AndV2ClientsShareAServer drives both protocol versions and both v2
// encodings against one server concurrently-ish over the same catalog.
func TestV1AndV2ClientsShareAServer(t *testing.T) {
	srv := startServer(t, server.Config{})
	v1, err := client.DialOptions(srv.Addr().String(), client.Options{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	v2bin := dial(t, srv)
	v2json, err := client.DialOptions(srv.Addr().String(), client.Options{Encoding: "json"})
	if err != nil {
		t.Fatal(err)
	}
	defer v2json.Close()

	if _, err := v1.Exec(`CREATE TABLE t (a int); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := v2bin.Exec(`INSERT INTO t VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	if _, err := v2json.Exec(`INSERT INTO t VALUES (3)`); err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*client.Client{"v1": v1, "v2-binary": v2bin, "v2-json": v2json} {
		n, err := c.QueryInt(`SELECT COUNT(*) AS n FROM t`)
		if err != nil || n != 3 {
			t.Errorf("%s count = %d, %v", name, n, err)
		}
	}
}

// TestOversizedResultStructuredError: a result bigger than the server's
// response cap must come back as a structured wire error — not a broken
// write — and the connection must keep working. Regression test for the
// old behavior of failing mid-write.
func TestOversizedResultStructuredError(t *testing.T) {
	srv := startServer(t, server.Config{MaxResultBytes: 4096})
	for name, c := range map[string]*client.Client{
		"v2": dial(t, srv),
		"v1": func() *client.Client {
			c, err := client.DialOptions(srv.Addr().String(), client.Options{Version: 1})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			return c
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			tbl := "big_" + name
			if _, err := c.Exec(fmt.Sprintf(`CREATE TABLE %s (id string REQUIRED, payload string) KEY (id)`, tbl)); err != nil {
				t.Fatal(err)
			}
			long := strings.Repeat("x", 2000)
			for i := 0; i < 4; i++ {
				if _, err := c.Exec(fmt.Sprintf(`INSERT INTO %s VALUES ('k%d', '%s')`, tbl, i, long)); err != nil {
					t.Fatal(err)
				}
			}
			// ~8KB result > 4096 cap: structured error, not a dead conn.
			_, _, err := c.Query(fmt.Sprintf(`SELECT * FROM %s`, tbl))
			if err == nil || !strings.Contains(err.Error(), "result too large") {
				t.Fatalf("oversized query err = %v, want 'result too large'", err)
			}
			// The connection is still usable and small results still flow.
			n, err := c.QueryInt(fmt.Sprintf(`SELECT COUNT(*) AS n FROM %s`, tbl))
			if err != nil || n != 4 {
				t.Fatalf("after oversized: count = %d, %v", n, err)
			}
		})
	}
}

// TestPipelinedHalfCloseDeliversAllResponses: a client that pipelines N
// frames and half-closes its write side must still receive all N
// responses — the terminal read error must not discard the server's
// buffered output. Regression test for the exit path skipping the flush.
func TestPipelinedHalfCloseDeliversAllResponses(t *testing.T) {
	srv := startServer(t, server.Config{MaxInFlight: 16})
	boot := dial(t, srv)
	if _, err := boot.Exec(`CREATE TABLE hc (id string REQUIRED, n int) KEY (id) STRICT`); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 8
	var buf []byte
	for i := 0; i < n; i++ {
		buf = wire.AppendFrame(buf, &wire.Frame{
			Version: wire.V2, Encoding: wire.EncBinary, Type: wire.FrameExec, ID: uint64(i + 1),
			Payload: wire.AppendRequest(nil, fmt.Sprintf(`INSERT INTO hc VALUES ('k%d', %d)`, i, i)),
		})
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		f, err := wire.ReadFrame(br, wire.MaxFrameBytes)
		if err != nil {
			t.Fatalf("response %d never arrived: %v", i, err)
		}
		if f.ID != uint64(i+1) {
			t.Errorf("response %d has ID %d", i, f.ID)
		}
		tr, err := wire.DecodeTypedResponse(f.Payload)
		if err != nil || tr.Err != "" {
			t.Errorf("response %d: %+v, %v", i, tr, err)
		}
	}
	cnt, err := boot.QueryInt(`SELECT COUNT(*) AS n FROM hc`)
	if err != nil || cnt != n {
		t.Errorf("count = %d, %v", cnt, err)
	}
}

// TestBatchOversizedStatementKeepsPerStatementResults: when one statement
// of a batch produces an over-cap result, only that statement's response
// becomes a structured error — Resps[i] still answers Qs[i] and the other
// results survive intact.
func TestBatchOversizedStatementKeepsPerStatementResults(t *testing.T) {
	srv := startServer(t, server.Config{MaxResultBytes: 4096})
	c := dial(t, srv)
	if _, err := c.Exec(`CREATE TABLE bo (id string REQUIRED, payload string) KEY (id)`); err != nil {
		t.Fatal(err)
	}
	long := strings.Repeat("x", 2000)
	for i := 0; i < 4; i++ {
		if _, err := c.Exec(fmt.Sprintf(`INSERT INTO bo VALUES ('k%d', '%s')`, i, long)); err != nil {
			t.Fatal(err)
		}
	}
	resps, err := c.ExecBatch([]string{
		`SELECT COUNT(*) AS n FROM bo`,
		`SELECT * FROM bo`, // ~8KB result: over the 4096 cap
		`SELECT id FROM bo WHERE id = 'k0'`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 {
		t.Fatalf("got %d responses for 3 statements: %+v", len(resps), resps)
	}
	if resps[0].Err != "" || resps[0].Rows[0][0] != "4" {
		t.Errorf("stmt 0 = %+v", resps[0])
	}
	if !strings.Contains(resps[1].Err, "result too large") {
		t.Errorf("stmt 1 err = %q, want 'result too large'", resps[1].Err)
	}
	if resps[2].Err != "" || len(resps[2].Rows) != 1 || resps[2].Rows[0][0] != "'k0'" {
		t.Errorf("stmt 2 = %+v", resps[2])
	}
}

func TestBatchExecution(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)
	if _, err := c.Exec(`CREATE TABLE b (id string REQUIRED, n int) KEY (id) STRICT`); err != nil {
		t.Fatal(err)
	}
	qs := make([]string, 0, 21)
	for i := 0; i < 10; i++ {
		qs = append(qs, fmt.Sprintf(`INSERT INTO b VALUES ('k%02d', %d)`, i, i))
	}
	qs = append(qs, `INSERT INTO b VALUES ('k00', 99)`) // duplicate key: fails
	for i := 10; i < 20; i++ {
		qs = append(qs, fmt.Sprintf(`INSERT INTO b VALUES ('k%02d', %d)`, i, i))
	}
	resps, err := c.ExecBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(qs) {
		t.Fatalf("got %d responses for %d statements", len(resps), len(qs))
	}
	for i, r := range resps {
		wantErr := i == 10
		if (r.Err != "") != wantErr {
			t.Errorf("stmt %d: err = %q, want error %v", i, r.Err, wantErr)
		}
	}
	// The failing middle statement did not stop the rest.
	n, err := c.QueryInt(`SELECT COUNT(*) AS n FROM b`)
	if err != nil || n != 20 {
		t.Errorf("count = %d, %v, want 20", n, err)
	}
	if srv.Stats().Batches != 1 {
		t.Errorf("batches = %d, want 1", srv.Stats().Batches)
	}
}

// TestServerPipelinedStress is the acceptance-criteria stress test: 32
// concurrent connections, each keeping a deep pipeline of mixed DoAsync
// inserts, batched inserts and reads in flight, under -race.
func TestServerPipelinedStress(t *testing.T) {
	srv := startServer(t, server.Config{MaxConns: 64, MaxInFlight: 8})
	boot := dial(t, srv)
	if _, err := boot.Exec(`CREATE TABLE stress2 (
		id string REQUIRED,
		n int,
		note string QUALITY (source string)
	) KEY (id) STRICT`); err != nil {
		t.Fatal(err)
	}

	const (
		workers   = 32
		perWorker = 48 // half pipelined singles, half batched
		depth     = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.DialOptions(srv.Addr().String(), client.Options{MaxInFlight: depth})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			// First half: pipelined singles with a window of `depth`.
			pend := make([]*client.Pending, 0, depth)
			drainOne := func() error {
				p := pend[0]
				pend = pend[1:]
				resp, err := p.Wait()
				if err != nil {
					return err
				}
				if resp.Err != "" {
					return fmt.Errorf("statement error: %s", resp.Err)
				}
				return nil
			}
			for i := 0; i < perWorker/2; i++ {
				if len(pend) == depth {
					if err := drainOne(); err != nil {
						errs <- fmt.Errorf("worker %d: %w", w, err)
						return
					}
				}
				p, err := c.DoAsync(fmt.Sprintf(
					`INSERT INTO stress2 VALUES ('w%02d-%03d', %d, 'x' @ {source: 'w%02d'})`, w, i, i, w))
				if err != nil {
					errs <- fmt.Errorf("worker %d send: %w", w, err)
					return
				}
				pend = append(pend, p)
			}
			for len(pend) > 0 {
				if err := drainOne(); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
			// Second half: one batch frame.
			qs := make([]string, 0, perWorker/2)
			for i := perWorker / 2; i < perWorker; i++ {
				qs = append(qs, fmt.Sprintf(
					`INSERT INTO stress2 VALUES ('w%02d-%03d', %d, 'x' @ {source: 'w%02d'})`, w, i, i, w))
			}
			resps, err := c.ExecBatch(qs)
			if err != nil {
				errs <- fmt.Errorf("worker %d batch: %w", w, err)
				return
			}
			for i, r := range resps {
				if r.Err != "" {
					errs <- fmt.Errorf("worker %d batch stmt %d: %s", w, i, r.Err)
					return
				}
			}
			// Interleaved hot read on the same pipelined conn.
			if _, err := c.QueryInt(`SELECT COUNT(*) AS n FROM stress2 WHERE n >= 0`); err != nil {
				errs <- fmt.Errorf("worker %d read: %w", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total, err := boot.QueryInt(`SELECT COUNT(*) AS n FROM stress2`)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(workers * perWorker); total != want {
		t.Errorf("row count = %d, want %d", total, want)
	}
	st := srv.Stats()
	if st.Errors != 0 {
		t.Errorf("server errors = %d, want 0", st.Errors)
	}
	if st.Batches != int64(workers) {
		t.Errorf("batches = %d, want %d", st.Batches, workers)
	}
	if st.Cache.Hits+st.Cache.PlanHits == 0 {
		t.Errorf("plan cache hits = 0 under stress; stats %+v", st.Cache)
	}
}

// TestForcedResponseEncoding: with Encoding "json" the server answers
// binary requests with JSON payloads, and the client decodes them by the
// frame header.
func TestForcedResponseEncoding(t *testing.T) {
	srv := startServer(t, server.Config{Encoding: "json"})
	c := dial(t, srv) // binary-encoding client
	if _, err := c.Exec(`CREATE TABLE t (a int); INSERT INTO t VALUES (7)`); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(`SELECT a FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" || len(resp.Rows) != 1 || resp.Rows[0][0] != "7" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Values != nil {
		t.Errorf("JSON-forced response should carry no typed values, got %+v", resp.Values)
	}
}
