// Observability endpoint: qqld can expose its metrics registry, a JSON
// stats snapshot and the standard Go profiler over a second listener
// (qqld -metrics <addr>), kept separate from the query port so operators
// can firewall it independently and a misbehaving scrape can never wedge
// the wire protocol.

package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// MetricsHandler returns the HTTP handler behind qqld -metrics:
//
//	/metrics       Prometheus text exposition (counters, latency summaries,
//	               plan-cache effectiveness, per-table data-quality gauges)
//	/stats         the same registry plus the Stats struct as JSON
//	/debug/pprof/  net/http/pprof (profile, heap, trace, ...)
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.scrape()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		s.scrape()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Server  Stats             `json:"server"`
			Metrics *metricsSnapshotJ `json:"metrics"`
		}{s.Stats(), &metricsSnapshotJ{s}})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// metricsSnapshotJ defers registry serialization to encode time so /stats
// reuses Registry.MarshalJSON without copying.
type metricsSnapshotJ struct{ s *Server }

func (m *metricsSnapshotJ) MarshalJSON() ([]byte, error) {
	return m.s.reg.MarshalJSON()
}

// scrape refreshes the derived series — server counter gauges, plan-cache
// stats and per-table quality gauges — immediately before exposition.
// Request counters and latency histograms are recorded inline on the query
// path and need no refresh.
func (s *Server) scrape() {
	st := s.Stats()
	s.reg.Gauge("qqld_connections_active").SetInt(st.Active)
	s.reg.Gauge("qqld_connections_accepted_total").SetInt(st.Accepted)
	s.reg.Gauge("qqld_connections_rejected_total").SetInt(st.Rejected)
	s.reg.Gauge("qqld_queries_total").SetInt(st.Queries)
	s.reg.Gauge("qqld_query_errors_total").SetInt(st.Errors)
	s.reg.Gauge("qqld_batches_total").SetInt(st.Batches)
	s.reg.Gauge("qqld_plan_cache_hits_total", metrics.L("tier", "ast")).SetInt(int64(st.Cache.Hits))
	s.reg.Gauge("qqld_plan_cache_misses_total", metrics.L("tier", "ast")).SetInt(int64(st.Cache.Misses))
	s.reg.Gauge("qqld_plan_cache_hits_total", metrics.L("tier", "plan")).SetInt(int64(st.Cache.PlanHits))
	s.reg.Gauge("qqld_plan_cache_misses_total", metrics.L("tier", "plan")).SetInt(int64(st.Cache.PlanMisses))
	s.reg.Gauge("qqld_plan_cache_invalidations_total").SetInt(int64(st.Cache.PlanInvalidations))
	s.reg.Gauge("qqld_plan_cache_entries", metrics.L("tier", "ast")).SetInt(int64(st.Cache.Entries))
	s.reg.Gauge("qqld_plan_cache_entries", metrics.L("tier", "plan")).SetInt(int64(st.Cache.PlanEntries))
	s.reg.Gauge("qqld_tuple_clones_total").SetInt(storage.TupleClones())
	if w := s.cfg.WAL; w != nil {
		ws := w.Stats()
		s.reg.Gauge("qqld_wal_appends_total").SetInt(int64(ws.Appends))
		s.reg.Gauge("qqld_wal_commits_total").SetInt(int64(ws.Commits))
		s.reg.Gauge("qqld_wal_fsyncs_total").SetInt(int64(ws.Fsyncs))
		s.reg.Gauge("qqld_wal_bytes_total").SetInt(int64(ws.Bytes))
		s.reg.Gauge("qqld_wal_group_max").SetInt(int64(ws.GroupMax))
		s.reg.Gauge("qqld_wal_checkpoints_total").SetInt(int64(ws.Checkpoints))
		s.reg.Gauge("qqld_wal_checkpoint_errors_total").SetInt(int64(ws.CkptErrs))
		s.reg.Gauge("qqld_wal_durable_seq").SetInt(int64(ws.DurableSeq))
		s.reg.Gauge("qqld_wal_appended_seq").SetInt(int64(ws.AppendedSeq))
		s.reg.Gauge("qqld_wal_segments").SetInt(ws.Segments)
		rs := w.RecoveryStats()
		s.reg.Gauge("qqld_wal_recovery_seconds").Set(rs.Duration.Seconds())
		s.reg.Gauge("qqld_wal_recovery_replayed").SetInt(int64(rs.Replayed))
	}
	s.quality.publish(s.reg)
}
