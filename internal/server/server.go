// Package server implements qqld, the QQL network daemon: a TCP server
// speaking the wire protocol of package wire — v2 length-prefixed frames
// with pipelined request IDs and a JSON or binary payload encoding, with
// legacy v1 line-JSON clients auto-detected by their first byte and served
// unchanged. Each accepted connection gets its own qql.Session — sessions
// are single-threaded by design, so a connection's requests execute in
// arrival order — while all sessions share one storage.Catalog and one
// qql.PlanCache, so concurrent clients see the same data and hot statements
// are parsed once. This is the serving layer the paper's embedded model
// lacks: the quality-tagged store behind a wire instead of a library call.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/qql"
	"repro/internal/relation"
	"repro/internal/server/wire"
	"repro/internal/storage"
	"repro/internal/storage/wal"
	"repro/internal/value"
)

// Config tunes a Server.
type Config struct {
	// Addr is the listen address, e.g. ":7583" or "127.0.0.1:0".
	Addr string
	// MaxConns caps concurrently served connections; excess connections are
	// sent one error response and closed. Default 64.
	MaxConns int
	// CacheSize is the shared plan cache's per-tier entry cap; 0 (the zero
	// value) means the default, a negative value disables caching entirely
	// (every statement is parsed and planned from scratch; Stats.Cache
	// reports Disabled).
	CacheSize int
	// Now, when non-zero, fixes every session's clock for reproducible
	// results (NOW() and AGE()).
	Now time.Time
	// Parallelism is the per-session scan fan-out degree for large
	// unindexed table scans; 0 means one worker per schedulable core, 1
	// forces serial scans.
	Parallelism int
	// MaxInFlight bounds the v2 frames a connection may have read but not
	// yet answered (the pipeline depth the server buffers per connection);
	// beyond it the server stops reading the socket until responses drain.
	// Default 32.
	MaxInFlight int
	// MaxResultBytes caps one encoded response (per statement); a larger
	// result is replaced by a structured error response and the connection
	// stays usable. 0 means the protocol cap (wire.MaxLineBytes on v1,
	// wire.MaxFrameBytes on v2); the protocol cap always applies as a
	// ceiling.
	MaxResultBytes int
	// Encoding selects the v2 response payload encoding: "auto" (default)
	// mirrors each request's encoding, "json" or "binary" force one.
	// Clients decode whatever arrives (the frame header names it).
	Encoding string
	// SlowQuery, when positive, logs every request whose execution takes at
	// least this long: normalized statement text, duration, row count,
	// plan-cache tier and plan shape.
	SlowQuery time.Duration
	// SlowQueryLog receives slow-query lines; default os.Stderr.
	SlowQueryLog io.Writer
	// WAL, when non-nil, write-ahead-logs every mutation: each session
	// routes DML/DDL through it and commits before its response is
	// written, so an acknowledged write survives a crash. The server's
	// catalog must be the log's recovered catalog (wal.Log.Catalog).
	WAL *wal.Log
}

// Stats is a point-in-time snapshot of server counters.
type Stats struct {
	// Accepted counts connections ever admitted; Active is current.
	Accepted int64
	Active   int64
	// Rejected counts connections turned away by the MaxConns cap.
	Rejected int64
	// Queries and Errors count statements/scripts served and the subset
	// that failed (parse, plan or execution error). Each statement of a
	// batch counts once.
	Queries int64
	Errors  int64
	// Batches counts v2 batch frames served.
	Batches int64
	// TotalLatency is the summed wall time spent executing requests; mean
	// latency is TotalLatency / Queries.
	TotalLatency time.Duration
	// Cache reports shared plan-cache effectiveness.
	Cache qql.CacheStats
}

// Server serves QQL over TCP. Create with New, start with Listen + Serve
// (or ListenAndServe), stop with Shutdown.
type Server struct {
	cfg   Config
	cat   *storage.Catalog
	cache *qql.PlanCache

	ln     net.Listener
	mu     sync.Mutex // guards conns
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	accepted atomic.Int64
	active   atomic.Int64
	rejected atomic.Int64
	queries  atomic.Int64
	errs     atomic.Int64
	batches  atomic.Int64
	latNanos atomic.Int64

	reg     *metrics.Registry
	quality *qualityCollector
	slowLog *log.Logger
}

// New creates a server over the catalog. The zero Config is usable: it
// listens on ":7583" with the default connection cap and cache size.
func New(cat *storage.Catalog, cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = ":7583"
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 32
	}
	// CacheSize 0 is the config zero value, meaning "default"; negative
	// disables (qql.NewPlanCache treats <= 0 as disabled, so map the
	// default explicitly).
	size := cfg.CacheSize
	if size == 0 {
		size = qql.DefaultCacheSize
	}
	slowOut := cfg.SlowQueryLog
	if slowOut == nil {
		slowOut = os.Stderr
	}
	s := &Server{
		cfg:     cfg,
		cat:     cat,
		cache:   qql.NewPlanCache(size),
		conns:   make(map[net.Conn]struct{}),
		reg:     metrics.NewRegistry(),
		quality: newQualityCollector(cat),
		slowLog: log.New(slowOut, "", log.LstdFlags|log.Lmicroseconds),
	}
	s.registerMetrics()
	return s
}

// registerMetrics pre-creates the request-path series so a scrape before
// any traffic still exposes every per-kind and per-protocol series at zero
// — dashboards and the CI smoke grep never race the first statement.
func (s *Server) registerMetrics() {
	r := s.reg
	r.Help("qqld_requests_total", "Requests served per wire protocol version.")
	r.Help("qqld_statements_total", "Requests served per statement kind (a script counts as its last statement).")
	r.Help("qqld_statement_errors_total", "Failed requests per statement kind.")
	r.Help("qqld_statement_seconds", "Request execution latency per statement kind.")
	r.Help("qqld_query_seconds", "Request execution latency across all statement kinds.")
	r.Help("qqld_plan_cache_hits_total", "Plan-cache hits per tier (ast, plan).")
	r.Help("qqld_plan_cache_misses_total", "Plan-cache misses per tier (ast, plan).")
	r.Help("qqld_plan_cache_invalidations_total", "Bound plans evicted by schema-version validation.")
	r.Help("qqld_plan_cache_entries", "Plan-cache resident entries per tier.")
	r.Help("qqld_connections_active", "Connections currently being served.")
	r.Help("qqld_connections_accepted_total", "Connections ever admitted.")
	r.Help("qqld_connections_rejected_total", "Connections turned away by the MaxConns cap.")
	r.Help("qqld_queries_total", "Requests served (each batch statement counts once).")
	r.Help("qqld_query_errors_total", "Requests that failed (parse, plan or execution error).")
	r.Help("qqld_batches_total", "v2 batch frames served.")
	r.Help("qqld_tuple_clones_total", "Process-wide defensive tuple clones in the storage layer.")
	if s.cfg.WAL != nil {
		r.Help("qqld_wal_appends_total", "Records appended to the write-ahead log.")
		r.Help("qqld_wal_commits_total", "Durable commits requested by sessions.")
		r.Help("qqld_wal_fsyncs_total", "fsync syscalls issued on log segments.")
		r.Help("qqld_wal_bytes_total", "Record bytes written to log segments.")
		r.Help("qqld_wal_group_max", "Largest record group made durable by one fsync.")
		r.Help("qqld_wal_checkpoints_total", "Snapshot checkpoints taken.")
		r.Help("qqld_wal_checkpoint_errors_total", "Failed checkpoint attempts; the log stays writable.")
		r.Help("qqld_wal_durable_seq", "Highest sequence on stable storage.")
		r.Help("qqld_wal_appended_seq", "Highest sequence appended to the log.")
		r.Help("qqld_wal_segments", "Live log segment files.")
		r.Help("qqld_wal_recovery_seconds", "Duration of crash recovery at boot.")
		r.Help("qqld_wal_recovery_replayed", "Log records replayed by crash recovery at boot.")
	}
	registerQualityHelp(r)
	for _, proto := range []string{"v1", "v2"} {
		r.Counter("qqld_requests_total", metrics.L("proto", proto))
	}
	for _, kind := range qql.StmtKinds {
		r.Counter("qqld_statements_total", metrics.L("kind", kind))
		r.Counter("qqld_statement_errors_total", metrics.L("kind", kind))
		r.Histogram("qqld_statement_seconds", metrics.L("kind", kind))
	}
	r.Histogram("qqld_query_seconds")
}

// Metrics returns the server's metrics registry. Callers may add their own
// series; the registry is safe for concurrent use.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Catalog returns the shared storage catalog.
func (s *Server) Catalog() *storage.Catalog { return s.cat }

// Cache returns the shared prepared-plan cache.
func (s *Server) Cache() *qql.PlanCache { return s.cache }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:     s.accepted.Load(),
		Active:       s.active.Load(),
		Rejected:     s.rejected.Load(),
		Queries:      s.queries.Load(),
		Errors:       s.errs.Load(),
		Batches:      s.batches.Load(),
		TotalLatency: time.Duration(s.latNanos.Load()),
		Cache:        s.cache.Stats(),
	}
}

// Listen binds the configured address. It must be called before Serve; it
// is separate so callers can learn the bound address (Addr) when listening
// on port 0.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr reports the bound listen address, nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Shutdown closes the listener. It always
// returns a non-nil error; after a clean Shutdown that error is
// net.ErrClosed (wrapped), which callers should treat as success.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return fmt.Errorf("server: closed: %w", net.ErrClosed)
			}
			return err
		}
		if s.active.Load() >= int64(s.cfg.MaxConns) {
			s.rejected.Add(1)
			// One parting error line, then close: clients get a reason
			// instead of a silent RST. The line form is readable by both
			// protocol versions — v2 clients fall back to line JSON when
			// the first response byte is not the frame magic.
			enc := json.NewEncoder(conn)
			_ = enc.Encode(wire.Response{Err: "server: too many connections"})
			conn.Close()
			continue
		}
		s.accepted.Add(1)
		s.active.Add(1)
		s.track(conn, true)
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// Shutdown stops the server: it closes the listener, interrupts idle reads
// so in-flight statements finish and their responses are delivered, then
// waits for handlers to exit. If they do not drain before ctx expires,
// remaining connections are force-closed and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.ln != nil {
		s.ln.Close()
	}
	// Expire reads rather than closing conns: a handler blocked reading
	// exits at once, while a handler mid-statement finishes executing,
	// writes its response (writes are unaffected), and exits on its next
	// read. Queued pipelined frames are drained and answered before the
	// handler exits. This is the graceful drain.
	//
	// The syscalls happen on a snapshot, outside s.mu: every handler's
	// read loop takes the lock to register and deregister, so one stuck
	// TCP stack (SetReadDeadline and Close can both block in the kernel)
	// must not wedge the whole server. Connections that appear after the
	// snapshot were accepted before the listener closed and still drain
	// through the wg wait below.
	now := time.Now()
	for _, conn := range s.snapshotConns() {
		_ = conn.SetReadDeadline(now)
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	for _, conn := range s.snapshotConns() {
		_ = conn.Close()
	}
	<-done
	return ctx.Err()
}

// snapshotConns copies the live connection set under s.mu so callers can
// run syscalls against the connections without holding the lock.
func (s *Server) snapshotConns() []net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	return conns
}

// newSession builds the per-connection session over the shared catalog and
// plan cache.
func (s *Server) newSession() *qql.Session {
	sess := qql.NewSession(s.cat)
	sess.SetPlanCache(s.cache)
	if s.cfg.WAL != nil {
		sess.SetDurability(s.cfg.WAL)
	}
	if !s.cfg.Now.IsZero() {
		sess.SetNow(s.cfg.Now)
	}
	if s.cfg.Parallelism > 0 {
		sess.SetParallelism(s.cfg.Parallelism)
	}
	sess.SetStatsExtra(s.statRows)
	return sess
}

// statRows contributes the server's counters to SHOW STATS, so any client
// can read them over the wire without the metrics endpoint.
func (s *Server) statRows() []qql.StatRow {
	st := s.Stats()
	return []qql.StatRow{
		{Name: "server_connections_active", Value: strconv.FormatInt(st.Active, 10)},
		{Name: "server_connections_accepted", Value: strconv.FormatInt(st.Accepted, 10)},
		{Name: "server_connections_rejected", Value: strconv.FormatInt(st.Rejected, 10)},
		{Name: "server_queries", Value: strconv.FormatInt(st.Queries, 10)},
		{Name: "server_errors", Value: strconv.FormatInt(st.Errors, 10)},
		{Name: "server_batches", Value: strconv.FormatInt(st.Batches, 10)},
		{Name: "server_total_latency", Value: st.TotalLatency.Round(time.Microsecond).String()},
	}
}

// handle dispatches one connection by its first byte: wire.Magic starts the
// v2 frame loop, anything else (in practice '{') the legacy v1 line loop.
// This is the version negotiation: a v1 client never sees a frame and a v2
// client declares its version in every frame header.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.track(conn, false)
		s.active.Add(-1)
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 64*1024)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == wire.Magic {
		s.handleV2(conn, br)
		return
	}
	s.handleV1(conn, br)
}

// handleV1 serves the legacy line-delimited JSON protocol: one request
// line, one response line, in lockstep.
func (s *Server) handleV1(conn net.Conn, br *bufio.Reader) {
	sess := s.newSession()
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 64*1024), wire.MaxLineBytes)
	out := bufio.NewWriter(conn)
	writeLine := func(resp *wire.Response) error {
		raw, err := json.Marshal(resp)
		if err != nil {
			return err
		}
		if max := s.resultCap(wire.MaxLineBytes); len(raw)+1 > max {
			if raw, err = json.Marshal(oversized(resp, len(raw), max)); err != nil {
				return err
			}
		}
		if _, err := out.Write(append(raw, '\n')); err != nil {
			return err
		}
		return out.Flush()
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req wire.Request
		var resp *wire.Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = &wire.Response{Err: "server: bad request: " + err.Error()}
		} else {
			resp = s.execute(sess, req.Q, "v1").Response()
		}
		if err := writeLine(resp); err != nil {
			return
		}
	}
	// Scan failures (most commonly a line over wire.MaxLineBytes) get a
	// best-effort error line so the client sees why the conn is closing;
	// shutdown's read-deadline expiry arrives here too, silently.
	if err := sc.Err(); err != nil && !s.closed.Load() {
		_ = writeLine(&wire.Response{Err: "server: read: " + err.Error()})
	}
}

// frameItem is one unit handed from the connection's reader goroutine to
// its executor: a well-formed frame, or a frame header whose payload was
// discarded (oversized), or a terminal read error.
type frameItem struct {
	f   *wire.Frame
	err error
}

// handleV2 serves the framed protocol. A reader goroutine pulls frames off
// the socket into a bounded queue — the per-connection in-flight bound —
// while this goroutine executes them in arrival order and writes responses
// tagged with their request IDs. The output buffer is flushed only when the
// queue is momentarily empty, so a pipelined burst pays one syscall, not
// one per response.
func (s *Server) handleV2(conn net.Conn, br *bufio.Reader) {
	sess := s.newSession()
	out := bufio.NewWriterSize(conn, 64*1024)
	frames := make(chan frameItem, s.cfg.MaxInFlight)
	go func() {
		defer close(frames)
		for {
			f, err := wire.ReadFrame(br, wire.MaxFrameBytes)
			if err != nil && !errors.Is(err, wire.ErrFrameTooLarge) {
				frames <- frameItem{err: err}
				return
			}
			frames <- frameItem{f: f, err: err}
		}
	}()
	// On exit, close the conn first so the reader unblocks, then drain the
	// queue so its send never leaks the goroutine.
	defer func() {
		conn.Close()
		for range frames {
		}
	}()

	for it := range frames {
		if it.f == nil {
			// Terminal read error. Responses already written for earlier
			// frames may still sit in the buffer (the in-loop flush skips
			// while the queue is non-empty), so flush before exiting:
			// a client that pipelines N requests and half-closes, and
			// Shutdown's deadline expiry, both still get every answer. A
			// stream desync (bad magic) also gets a best-effort
			// diagnostic frame.
			if !s.closed.Load() && errors.Is(it.err, wire.ErrBadMagic) {
				_ = s.writeResp(out, wire.EncJSON, 0,
					&wire.TypedResponse{Err: "server: read: " + it.err.Error()})
			}
			_ = out.Flush()
			return
		}
		enc := s.respEncoding(it.f.Encoding)
		var err error
		switch {
		case errors.Is(it.err, wire.ErrFrameTooLarge):
			err = s.writeResp(out, enc, it.f.ID,
				&wire.TypedResponse{Err: "server: " + it.err.Error()})
		case it.f.Version != wire.V2:
			err = s.writeResp(out, enc, it.f.ID, &wire.TypedResponse{
				Err: fmt.Sprintf("server: unsupported protocol version %d (want %d)", it.f.Version, wire.V2)})
		default:
			err = s.serveFrame(out, sess, it.f, enc)
		}
		if err != nil {
			return
		}
		if len(frames) == 0 {
			if out.Flush() != nil {
				return
			}
		}
	}
}

// serveFrame executes one well-formed request frame and writes its
// response.
func (s *Server) serveFrame(out *bufio.Writer, sess *qql.Session, f *wire.Frame, enc wire.Encoding) error {
	switch f.Type {
	case wire.FrameExec:
		q, err := decodeExec(f)
		if err != nil {
			return s.writeResp(out, enc, f.ID, &wire.TypedResponse{Err: "server: bad request: " + err.Error()})
		}
		return s.writeResp(out, enc, f.ID, s.execute(sess, q, "v2"))
	case wire.FrameBatch:
		qs, err := decodeBatch(f)
		if err != nil {
			return s.writeResp(out, enc, f.ID, &wire.TypedResponse{Err: "server: bad batch request: " + err.Error()})
		}
		s.batches.Add(1)
		// One session pass over the whole batch: per-statement results,
		// later statements run even when an earlier one fails (each
		// statement is its own unit of work, as on separate requests).
		// Durable commit is deferred across the batch so one fsync —
		// issued before the response frame — covers every statement.
		sess.SetDeferCommit(true)
		resps := make([]*wire.TypedResponse, len(qs))
		for i, q := range qs {
			resps[i] = s.execute(sess, q, "v2")
		}
		sess.SetDeferCommit(false)
		if err := sess.CommitDurable(); err != nil {
			// Nothing in this batch is durable; no statement may be
			// acknowledged as applied.
			s.errs.Add(1)
			for i := range resps {
				resps[i] = &wire.TypedResponse{Err: "server: durable commit: " + err.Error()}
			}
		}
		return s.writeBatchResp(out, enc, f.ID, resps)
	default:
		return s.writeResp(out, enc, f.ID,
			&wire.TypedResponse{Err: fmt.Sprintf("server: unknown frame type 0x%02x", f.Type)})
	}
}

func decodeExec(f *wire.Frame) (string, error) {
	if f.Encoding == wire.EncBinary {
		return wire.DecodeRequest(f.Payload)
	}
	var req wire.Request
	if err := json.Unmarshal(f.Payload, &req); err != nil {
		return "", err
	}
	return req.Q, nil
}

func decodeBatch(f *wire.Frame) ([]string, error) {
	if f.Encoding == wire.EncBinary {
		return wire.DecodeBatchRequest(f.Payload)
	}
	var req wire.BatchRequest
	if err := json.Unmarshal(f.Payload, &req); err != nil {
		return nil, err
	}
	return req.Qs, nil
}

// respEncoding picks the response payload encoding for a request that used
// reqEnc: mirror it, unless the config forces one.
func (s *Server) respEncoding(reqEnc wire.Encoding) wire.Encoding {
	switch s.cfg.Encoding {
	case "json":
		return wire.EncJSON
	case "binary":
		return wire.EncBinary
	}
	if reqEnc == wire.EncBinary {
		return wire.EncBinary
	}
	return wire.EncJSON
}

// resultCap is the effective per-response size limit under protocol cap
// protoMax.
func (s *Server) resultCap(protoMax int) int {
	if s.cfg.MaxResultBytes > 0 && s.cfg.MaxResultBytes < protoMax {
		return s.cfg.MaxResultBytes
	}
	return protoMax
}

// oversized builds the structured error substituted for a response too
// large to ship, preserving the statement count so the client still learns
// how much of the script ran.
func oversized(resp *wire.Response, size, max int) *wire.Response {
	return &wire.Response{N: resp.N, Err: fmt.Sprintf(
		"server: result too large: %d bytes > %d cap (narrow the query, or raise the server's MaxResultBytes)",
		size, max)}
}

// encodeResp renders one response payload in enc, substituting a
// structured error when it exceeds the size cap.
func (s *Server) encodeResp(enc wire.Encoding, t *wire.TypedResponse) ([]byte, error) {
	var payload []byte
	var err error
	if enc == wire.EncBinary {
		payload = wire.AppendTypedResponse(nil, t)
	} else if payload, err = json.Marshal(t.Response()); err != nil {
		return nil, err
	}
	if max := s.resultCap(wire.MaxFrameBytes); len(payload) > max {
		over := oversized(&wire.Response{N: t.N}, len(payload), max)
		if enc == wire.EncBinary {
			return wire.AppendTypedResponse(nil, &wire.TypedResponse{N: over.N, Err: over.Err}), nil
		}
		return json.Marshal(over)
	}
	return payload, nil
}

func (s *Server) writeResp(out *bufio.Writer, enc wire.Encoding, id uint64, t *wire.TypedResponse) error {
	payload, err := s.encodeResp(enc, t)
	if err != nil {
		return err
	}
	return wire.WriteFrame(out, &wire.Frame{
		Version: wire.V2, Encoding: enc, Type: wire.FrameResult, ID: id, Payload: payload})
}

// encodeBatchPayload renders a whole batch response in enc.
func encodeBatchPayload(enc wire.Encoding, resps []*wire.TypedResponse) ([]byte, error) {
	if enc == wire.EncBinary {
		return wire.AppendTypedBatch(nil, resps), nil
	}
	br := wire.BatchResponse{Resps: make([]wire.Response, len(resps))}
	for i, t := range resps {
		br.Resps[i] = *t.Response()
	}
	return json.Marshal(&br)
}

// rawRespSize measures one response's encoded size in enc, without any cap
// substitution.
func rawRespSize(enc wire.Encoding, t *wire.TypedResponse) (int, error) {
	if enc == wire.EncBinary {
		return len(wire.AppendTypedBatch(nil, []*wire.TypedResponse{t})), nil
	}
	raw, err := json.Marshal(t.Response())
	if err != nil {
		return 0, err
	}
	return len(raw), nil
}

func (s *Server) writeBatchResp(out *bufio.Writer, enc wire.Encoding, id uint64, resps []*wire.TypedResponse) error {
	payload, err := encodeBatchPayload(enc, resps)
	if err != nil {
		return err
	}
	// An oversized batch payload is rebuilt with a per-statement budget:
	// each over-budget statement result — not the whole batch — becomes a
	// structured error, preserving Resps[i]-answers-Qs[i]. If the rebuild
	// is somehow still too big the batch is replaced wholesale.
	if limit := s.resultCap(wire.MaxFrameBytes); len(payload) > limit {
		budget := limit / max(len(resps), 1)
		capped := make([]*wire.TypedResponse, len(resps))
		for i, t := range resps {
			size, err := rawRespSize(enc, t)
			if err != nil {
				return err
			}
			if size > budget {
				over := oversized(&wire.Response{N: t.N}, size, budget)
				capped[i] = &wire.TypedResponse{N: over.N, Err: over.Err}
			} else {
				capped[i] = t
			}
		}
		if payload, err = encodeBatchPayload(enc, capped); err != nil {
			return err
		}
		if len(payload) > limit {
			// Still too big (batch wrapper overhead, or many results each
			// just under budget): error out every element, keeping the
			// Resps[i]-answers-Qs[i] contract intact.
			over := oversized(&wire.Response{}, len(payload), limit)
			errs := make([]*wire.TypedResponse, len(resps))
			for i, t := range resps {
				errs[i] = &wire.TypedResponse{N: t.N, Err: over.Err}
			}
			if payload, err = encodeBatchPayload(enc, errs); err != nil {
				return err
			}
			if len(payload) > wire.MaxFrameBytes {
				// Pathological (millions of statements): a lone error
				// element is the last resort that still fits a frame.
				if payload, err = encodeBatchPayload(enc, []*wire.TypedResponse{{Err: over.Err}}); err != nil {
					return err
				}
			}
		}
	}
	return wire.WriteFrame(out, &wire.Frame{
		Version: wire.V2, Encoding: enc, Type: wire.FrameBatchResult, ID: id, Payload: payload})
}

// execute runs one request script and shapes the response with typed
// cells; encoders render it per the connection's encoding. proto names the
// wire protocol version that carried the request, for accounting.
func (s *Server) execute(sess *qql.Session, src, proto string) *wire.TypedResponse {
	start := time.Now()
	results, err := sess.Exec(src)
	dur := time.Since(start)
	s.latNanos.Add(int64(dur))
	s.queries.Add(1)
	resp := &wire.TypedResponse{N: len(results)}
	for _, r := range results {
		switch {
		case r.Rel != nil:
			resp.Cols, resp.Rows = typedRelation(r.Rel)
			resp.Msg = ""
		case r.Plan != "":
			resp.Plan = r.Plan
		case r.Msg != "":
			resp.Msg = r.Msg
		}
	}
	if err != nil {
		s.errs.Add(1)
		resp.Err = err.Error()
	}
	s.record(sess, src, proto, dur, err)
	return resp
}

// record feeds the metrics registry and the slow-query log for one served
// request. A multi-statement script is accounted under its last statement's
// kind — the one whose result shaped the response.
func (s *Server) record(sess *qql.Session, src, proto string, dur time.Duration, err error) {
	info := sess.LastExecInfo()
	kind := info.Kind
	if kind == "" {
		kind = "other"
	}
	s.reg.Counter("qqld_requests_total", metrics.L("proto", proto)).Inc()
	s.reg.Counter("qqld_statements_total", metrics.L("kind", kind)).Inc()
	if err != nil {
		s.reg.Counter("qqld_statement_errors_total", metrics.L("kind", kind)).Inc()
	}
	s.reg.Histogram("qqld_statement_seconds", metrics.L("kind", kind)).Observe(dur)
	s.reg.Histogram("qqld_query_seconds").Observe(dur)
	if s.cfg.SlowQuery > 0 && dur >= s.cfg.SlowQuery {
		text := src
		if norm, nerr := qql.Normalize(src); nerr == nil {
			text = norm
		}
		if len(text) > 512 {
			text = text[:512] + "..."
		}
		cache, shape := info.CacheTier, info.PlanShape
		if cache == "" {
			cache = "-"
		}
		if shape == "" {
			shape = "-"
		}
		s.slowLog.Printf("slow query (%v) rows=%d cache=%s plan=%q stmt=%s",
			dur.Round(time.Microsecond), info.Rows, cache, shape, text)
	}
}

// typedRelation extracts a relation's header and typed cells; rendering to
// QQL literals happens only on the JSON/v1 paths.
func typedRelation(rel *relation.Relation) (cols []string, rows [][]value.Value) {
	cols = make([]string, len(rel.Schema.Attrs))
	for i, a := range rel.Schema.Attrs {
		cols[i] = a.Name
	}
	rows = make([][]value.Value, len(rel.Tuples))
	for i, t := range rel.Tuples {
		row := make([]value.Value, len(t.Cells))
		for j, c := range t.Cells {
			row[j] = c.V
		}
		rows[i] = row
	}
	return cols, rows
}
