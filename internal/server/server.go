// Package server implements qqld, the QQL network daemon: a TCP server
// speaking the line-delimited JSON protocol of package wire. Each accepted
// connection gets its own qql.Session — sessions are single-threaded by
// design — while all sessions share one storage.Catalog and one
// qql.PlanCache, so concurrent clients see the same data and hot statements
// are parsed once. This is the serving layer the paper's embedded model
// lacks: the quality-tagged store behind a wire instead of a library call.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qql"
	"repro/internal/relation"
	"repro/internal/server/wire"
	"repro/internal/storage"
)

// Config tunes a Server.
type Config struct {
	// Addr is the listen address, e.g. ":7583" or "127.0.0.1:0".
	Addr string
	// MaxConns caps concurrently served connections; excess connections are
	// sent one error response and closed. Default 64.
	MaxConns int
	// CacheSize is the shared plan cache's entry cap; 0 means the default.
	CacheSize int
	// Now, when non-zero, fixes every session's clock for reproducible
	// results (NOW() and AGE()).
	Now time.Time
	// Parallelism is the per-session scan fan-out degree for large
	// unindexed table scans; 0 means one worker per schedulable core, 1
	// forces serial scans.
	Parallelism int
}

// Stats is a point-in-time snapshot of server counters.
type Stats struct {
	// Accepted counts connections ever admitted; Active is current.
	Accepted int64
	Active   int64
	// Rejected counts connections turned away by the MaxConns cap.
	Rejected int64
	// Queries and Errors count request lines served and the subset that
	// failed (parse, plan or execution error).
	Queries int64
	Errors  int64
	// TotalLatency is the summed wall time spent executing requests; mean
	// latency is TotalLatency / Queries.
	TotalLatency time.Duration
	// Cache reports shared plan-cache effectiveness.
	Cache qql.CacheStats
}

// Server serves QQL over TCP. Create with New, start with Listen + Serve
// (or ListenAndServe), stop with Shutdown.
type Server struct {
	cfg   Config
	cat   *storage.Catalog
	cache *qql.PlanCache

	ln     net.Listener
	mu     sync.Mutex // guards conns
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	accepted atomic.Int64
	active   atomic.Int64
	rejected atomic.Int64
	queries  atomic.Int64
	errs     atomic.Int64
	latNanos atomic.Int64
}

// New creates a server over the catalog. The zero Config is usable: it
// listens on ":7583" with the default connection cap and cache size.
func New(cat *storage.Catalog, cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = ":7583"
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	return &Server{
		cfg:   cfg,
		cat:   cat,
		cache: qql.NewPlanCache(cfg.CacheSize),
		conns: make(map[net.Conn]struct{}),
	}
}

// Catalog returns the shared storage catalog.
func (s *Server) Catalog() *storage.Catalog { return s.cat }

// Cache returns the shared prepared-plan cache.
func (s *Server) Cache() *qql.PlanCache { return s.cache }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:     s.accepted.Load(),
		Active:       s.active.Load(),
		Rejected:     s.rejected.Load(),
		Queries:      s.queries.Load(),
		Errors:       s.errs.Load(),
		TotalLatency: time.Duration(s.latNanos.Load()),
		Cache:        s.cache.Stats(),
	}
}

// Listen binds the configured address. It must be called before Serve; it
// is separate so callers can learn the bound address (Addr) when listening
// on port 0.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr reports the bound listen address, nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Shutdown closes the listener. It always
// returns a non-nil error; after a clean Shutdown that error is
// net.ErrClosed (wrapped), which callers should treat as success.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return fmt.Errorf("server: closed: %w", net.ErrClosed)
			}
			return err
		}
		if s.active.Load() >= int64(s.cfg.MaxConns) {
			s.rejected.Add(1)
			// One parting error line, then close: clients get a reason
			// instead of a silent RST.
			enc := json.NewEncoder(conn)
			_ = enc.Encode(wire.Response{Err: "server: too many connections"})
			conn.Close()
			continue
		}
		s.accepted.Add(1)
		s.active.Add(1)
		s.track(conn, true)
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// Shutdown stops the server: it closes the listener, interrupts idle reads
// so in-flight statements finish and their responses are delivered, then
// waits for handlers to exit. If they do not drain before ctx expires,
// remaining connections are force-closed and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.ln != nil {
		s.ln.Close()
	}
	// Expire reads rather than closing conns: a handler blocked in Scan
	// exits at once, while a handler mid-statement finishes executing,
	// writes its response (writes are unaffected), and exits on its next
	// read. This is the graceful drain.
	s.mu.Lock()
	now := time.Now()
	for conn := range s.conns {
		_ = conn.SetReadDeadline(now)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// newSession builds the per-connection session over the shared catalog and
// plan cache.
func (s *Server) newSession() *qql.Session {
	sess := qql.NewSession(s.cat)
	sess.SetPlanCache(s.cache)
	if !s.cfg.Now.IsZero() {
		sess.SetNow(s.cfg.Now)
	}
	if s.cfg.Parallelism > 0 {
		sess.SetParallelism(s.cfg.Parallelism)
	}
	return sess
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.track(conn, false)
		s.active.Add(-1)
		s.wg.Done()
	}()
	sess := s.newSession()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), wire.MaxLineBytes)
	out := bufio.NewWriter(conn)
	enc := json.NewEncoder(out)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req wire.Request
		resp := wire.Response{}
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Err = "server: bad request: " + err.Error()
		} else {
			resp = s.execute(sess, req.Q)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
	// Scan failures (most commonly a line over wire.MaxLineBytes) get a
	// best-effort error line so the client sees why the conn is closing;
	// shutdown's read-deadline expiry arrives here too, silently.
	if err := sc.Err(); err != nil && !s.closed.Load() {
		if enc.Encode(wire.Response{Err: "server: read: " + err.Error()}) == nil {
			_ = out.Flush()
		}
	}
}

// execute runs one request script and shapes the response.
func (s *Server) execute(sess *qql.Session, src string) wire.Response {
	start := time.Now()
	results, err := sess.Exec(src)
	s.latNanos.Add(int64(time.Since(start)))
	s.queries.Add(1)
	resp := wire.Response{N: len(results)}
	for _, r := range results {
		switch {
		case r.Rel != nil:
			resp.Cols, resp.Rows = encodeRelation(r.Rel)
			resp.Msg = ""
		case r.Plan != "":
			resp.Plan = r.Plan
		case r.Msg != "":
			resp.Msg = r.Msg
		}
	}
	if err != nil {
		s.errs.Add(1)
		resp.Err = err.Error()
	}
	return resp
}

// encodeRelation renders a relation's header and rows as QQL literals.
func encodeRelation(rel *relation.Relation) (cols []string, rows [][]string) {
	cols = make([]string, len(rel.Schema.Attrs))
	for i, a := range rel.Schema.Attrs {
		cols[i] = a.Name
	}
	rows = make([][]string, len(rel.Tuples))
	for i, t := range rel.Tuples {
		row := make([]string, len(t.Cells))
		for j, c := range t.Cells {
			row[j] = c.V.Literal()
		}
		rows[i] = row
	}
	return cols, rows
}
