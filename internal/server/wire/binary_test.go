package wire

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/value"
)

// sampleValues covers every kind with awkward payloads: quoted strings,
// t'...'-style times with nanoseconds, pre-epoch times, extremes.
func sampleValues() []value.Value {
	return []value.Value{
		value.Null,
		value.Bool(true),
		value.Bool(false),
		value.Int(0),
		value.Int(-1),
		value.Int(math.MaxInt64),
		value.Int(math.MinInt64),
		value.Float(0),
		value.Float(-1.5),
		value.Float(math.MaxFloat64),
		value.Float(math.SmallestNonzeroFloat64),
		value.Float(math.Inf(1)),
		value.Float(math.Inf(-1)),
		value.Float(math.NaN()),
		value.Str(""),
		value.Str("plain"),
		value.Str("it's got 'quotes', a \" and a \\ backslash"),
		value.Str("newline\nand\ttab"),
		value.Str("unicode: 世界 — ümlaut"),
		value.Str(strings.Repeat("x", 10_000)),
		value.Time(time.Date(1991, 10, 3, 0, 0, 0, 0, time.UTC)),
		value.Time(time.Date(1969, 12, 31, 23, 59, 59, 999999999, time.UTC)),
		value.Time(time.Unix(0, 0).UTC()),
		value.Time(time.Date(2262, 1, 1, 12, 34, 56, 789, time.UTC)),
		value.Duration(0),
		value.Duration(-90 * time.Minute),
		value.Duration(720 * time.Hour),
		value.Duration(time.Duration(math.MaxInt64)),
	}
}

func TestValueRoundTrip(t *testing.T) {
	for _, v := range sampleValues() {
		buf := AppendValue(nil, v)
		got, rest, err := ReadValue(buf)
		if err != nil {
			t.Fatalf("ReadValue(%v): %v", v, err)
		}
		if len(rest) != 0 {
			t.Errorf("ReadValue(%v): %d trailing bytes", v, len(rest))
		}
		if got.Kind() != v.Kind() {
			t.Errorf("kind drift: %v -> %v", v.Kind(), got.Kind())
		}
		if !value.Equal(got, v) {
			t.Errorf("value drift: %v -> %v", v, got)
		}
		// Times must survive to the instant, not just Compare-equality.
		if v.Kind() == value.KindTime && !got.AsTime().Equal(v.AsTime()) {
			t.Errorf("time drift: %v -> %v", v.AsTime(), got.AsTime())
		}
	}
}

func TestValueStreamRoundTrip(t *testing.T) {
	// All samples concatenated decode back in order from one buffer.
	vals := sampleValues()
	var buf []byte
	for _, v := range vals {
		buf = AppendValue(buf, v)
	}
	for i, v := range vals {
		var got value.Value
		var err error
		got, buf, err = ReadValue(buf)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if !value.Equal(got, v) {
			t.Errorf("value %d drift: %v -> %v", i, v, got)
		}
	}
	if len(buf) != 0 {
		t.Errorf("%d trailing bytes", len(buf))
	}
}

func responsesEqual(a, b *TypedResponse) bool {
	if a.N != b.N || a.Msg != b.Msg || a.Plan != b.Plan || a.Err != b.Err ||
		len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j].Kind() != b.Rows[i][j].Kind() || !value.Equal(a.Rows[i][j], b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestTypedResponseRoundTrip(t *testing.T) {
	vals := sampleValues()
	cases := []*TypedResponse{
		{},
		{N: 3, Msg: "inserted 3 row(s)"},
		{Err: "qql: unknown table \"nope\"", N: 1},
		{Plan: "TableScan(customer)\n  Project(co_name)"},
		{
			N:    1,
			Cols: []string{"co_name", "employees", "since", "stale"},
			Rows: [][]value.Value{
				{value.Str("Fruit Co"), value.Int(4004), value.Time(time.Date(1991, 10, 3, 0, 0, 0, 0, time.UTC)), value.Bool(false)},
				{value.Str("Nut Co"), value.Int(700), value.Null, value.Bool(true)},
			},
		},
		// Ragged rows and every sample value in one column.
		{Cols: []string{"v"}, Rows: [][]value.Value{vals, vals[:3], {}, vals[5:9]}},
	}
	for i, tr := range cases {
		buf := AppendTypedResponse(nil, tr)
		got, err := DecodeTypedResponse(buf)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !responsesEqual(tr, got) {
			t.Errorf("case %d drift:\n in: %+v\nout: %+v", i, tr, got)
		}
	}
}

func TestTypedResponseRender(t *testing.T) {
	tr := &TypedResponse{
		N:    1,
		Cols: []string{"s", "t"},
		Rows: [][]value.Value{{
			value.Str("it's"),
			value.Time(time.Date(1991, 10, 3, 0, 0, 0, 0, time.UTC)),
		}},
	}
	r := tr.Response()
	if r.Rows[0][0] != "'it''s'" {
		t.Errorf("string literal = %q", r.Rows[0][0])
	}
	if r.Rows[0][1] != "t'1991-10-03T00:00:00Z'" {
		t.Errorf("time literal = %q", r.Rows[0][1])
	}
	if len(r.Values) != 1 || !value.Equal(r.Values[0][0], value.Str("it's")) {
		t.Errorf("typed values not carried: %+v", r.Values)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	qs := []string{"SELECT 1", "", "INSERT INTO t VALUES ('it''s', t'1991-10-03T00:00:00Z')"}
	got, err := DecodeBatchRequest(AppendBatchRequest(nil, qs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("len = %d, want %d", len(got), len(qs))
	}
	for i := range qs {
		if got[i] != qs[i] {
			t.Errorf("stmt %d = %q, want %q", i, got[i], qs[i])
		}
	}

	resps := []*TypedResponse{
		{N: 1, Msg: "ok"},
		{Err: "boom"},
		{Cols: []string{"n"}, Rows: [][]value.Value{{value.Int(42)}}, N: 1},
	}
	dec, err := DecodeTypedBatch(AppendTypedBatch(nil, resps))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(resps) {
		t.Fatalf("len = %d, want %d", len(dec), len(resps))
	}
	for i := range resps {
		if !responsesEqual(resps[i], dec[i]) {
			t.Errorf("resp %d drift: %+v -> %+v", i, resps[i], dec[i])
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, q := range []string{"", "SELECT 1", "multi\nline 'quoted' t'1991-10-03T00:00:00Z'"} {
		got, err := DecodeRequest(AppendRequest(nil, q))
		if err != nil || got != q {
			t.Errorf("request %q -> %q, %v", q, got, err)
		}
	}
}

func TestDecodeRejectsTrailingAndTruncated(t *testing.T) {
	buf := AppendTypedResponse(nil, &TypedResponse{Msg: "ok"})
	if _, err := DecodeTypedResponse(append(buf, 0xFF)); err == nil {
		t.Error("trailing byte accepted")
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodeTypedResponse(buf[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// A length prefix pointing past the payload must error, not allocate.
	if _, err := DecodeBatchRequest([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}); err == nil {
		t.Error("absurd batch count accepted")
	}
}

// FuzzDecodeTypedResponse asserts the decoder never panics on arbitrary
// bytes and that anything it accepts re-encodes to an equal response.
func FuzzDecodeTypedResponse(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendTypedResponse(nil, &TypedResponse{Msg: "ok", N: 2}))
	f.Add(AppendTypedResponse(nil, &TypedResponse{
		Cols: []string{"v"},
		Rows: [][]value.Value{sampleValues()},
	}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTypedResponse(data)
		if err != nil {
			return
		}
		again, err := DecodeTypedResponse(AppendTypedResponse(nil, tr))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !responsesEqual(tr, again) {
			t.Fatalf("re-encode drift:\n in: %+v\nout: %+v", tr, again)
		}
	})
}

// FuzzValueRoundTrip drives the cell codec from primitive components.
func FuzzValueRoundTrip(f *testing.F) {
	f.Add(int64(42), "it's", 3.14, int64(686448000), int64(12345))
	f.Add(int64(math.MinInt64), "", math.Inf(-1), int64(-1), int64(math.MaxInt64))
	f.Fuzz(func(t *testing.T, i int64, s string, fl float64, sec int64, dur int64) {
		vals := []value.Value{
			value.Int(i),
			value.Str(s),
			value.Float(fl),
			value.Time(time.Unix(sec, i%int64(time.Second)).UTC()),
			value.Duration(time.Duration(dur)),
		}
		for _, v := range vals {
			got, rest, err := ReadValue(AppendValue(nil, v))
			if err != nil || len(rest) != 0 {
				t.Fatalf("round trip %v: %v, %d rest", v, err, len(rest))
			}
			if got.Kind() != v.Kind() || !value.Equal(got, v) {
				t.Fatalf("drift: %v -> %v", v, got)
			}
		}
	})
}
