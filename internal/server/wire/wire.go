// Package wire defines the qqld wire protocol.
//
// Two protocol versions share one TCP port, distinguished by the first byte
// a client sends:
//
//   - v1 (legacy): one JSON object per line in each direction. The client
//     sends a Request — {"q": "<qql script>"} — terminated by '\n' and the
//     server replies with exactly one Response line. First byte is '{', so
//     v1 clients are auto-detected and served unchanged.
//   - v2 (framed): length-prefixed frames, each carrying a version byte, a
//     payload encoding (EncJSON or EncBinary), a frame type, and a
//     client-chosen request ID. Because responses are tagged with the ID of
//     the request they answer, a client may pipeline many requests on one
//     socket; the server executes them in arrival order per connection and
//     streams the responses back. First byte is Magic (0xF7), which can
//     never begin JSON text.
//
// A request payload is either a Request (FrameExec: one script) or a
// BatchRequest (FrameBatch: several statements executed in order with
// per-statement results). A response payload is a Response or a
// BatchResponse. Under EncJSON payloads are the JSON marshalling of those
// structs; under EncBinary they are the compact codec of binary.go, which
// carries typed cells (varint-framed columns, value.Value cells) instead of
// re-parsed QQL literal strings.
//
// A script may contain several statements; its Response carries the last
// relation produced (cols/rows), or the last DDL/DML message when no
// statement returned rows, plus the EXPLAIN plan text when the final
// statement was an EXPLAIN. On error the response has err set and the other
// fields describe whatever completed before the failure. Cell values in the
// string form are rendered as QQL literals (value.Literal), so strings come
// back single-quoted and times as t'...' — text that parses back to an
// equal value.
package wire

import "repro/internal/value"

// Request is one client->server message: a QQL script.
type Request struct {
	Q string `json:"q"`
}

// BatchRequest is a v2 client->server message carrying several statements
// to execute in order on the connection's session, with one Response per
// statement. Batching amortizes the per-request round-trip: an ingest
// client ships hundreds of INSERTs in one frame.
type BatchRequest struct {
	Qs []string `json:"qs"`
}

// Response is one server->client message.
type Response struct {
	Cols []string   `json:"cols,omitempty"`
	Rows [][]string `json:"rows,omitempty"`
	// N is the number of statements executed successfully.
	N    int    `json:"n,omitempty"`
	Msg  string `json:"msg,omitempty"`
	Plan string `json:"plan,omitempty"`
	Err  string `json:"err,omitempty"`
	// Values holds the typed cells when the response arrived in EncBinary;
	// Rows is rendered from it (value.Literal) so the string API is
	// encoding-agnostic. Never serialized: JSON responses carry only Rows.
	Values [][]value.Value `json:"-"`
}

// BatchResponse answers a BatchRequest: Resps[i] answers Qs[i].
type BatchResponse struct {
	Resps []Response `json:"resps"`
}

// MaxLineBytes bounds one v1 protocol line in either direction (1 MiB).
const MaxLineBytes = 1 << 20

// MaxFrameBytes bounds one v2 frame payload in either direction (4 MiB).
// The server substitutes a structured error Response for results that would
// exceed the cap (or the stricter server.Config.MaxResultBytes), keeping
// the connection usable.
const MaxFrameBytes = 4 << 20
