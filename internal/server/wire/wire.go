// Package wire defines the qqld line protocol: one JSON object per line in
// each direction over a plain TCP connection.
//
// The client sends a Request — {"q": "<qql script>"} — terminated by '\n'.
// The server executes the script in the connection's session and replies
// with exactly one Response line. A script may contain several statements;
// the response carries the last relation produced (cols/rows), or the last
// DDL/DML message when no statement returned rows, plus the EXPLAIN plan
// text when the final statement was an EXPLAIN. On error the response has
// err set and the other fields describe whatever completed before the
// failure. Cell values are rendered as QQL literals (value.Literal), so
// strings come back single-quoted and times as t'...' — text that parses
// back to an equal value.
package wire

// Request is one client->server message.
type Request struct {
	Q string `json:"q"`
}

// Response is one server->client message.
type Response struct {
	Cols []string   `json:"cols,omitempty"`
	Rows [][]string `json:"rows,omitempty"`
	// N is the number of statements executed successfully.
	N    int    `json:"n,omitempty"`
	Msg  string `json:"msg,omitempty"`
	Plan string `json:"plan,omitempty"`
	Err  string `json:"err,omitempty"`
}

// MaxLineBytes bounds one protocol line in either direction (1 MiB).
const MaxLineBytes = 1 << 20
