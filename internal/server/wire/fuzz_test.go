package wire

import (
	"bytes"
	"testing"
)

// fuzzFrameMax caps payloads during fuzzing well below MaxFrameBytes so a
// random 4-byte length field cannot make ReadFrame buffer gigabytes.
const fuzzFrameMax = 1 << 16

// FuzzReadFrame drives the v2 frame decoder with arbitrary bytes. Crash-
// freedom aside, it checks the codec round-trip: any frame ReadFrame
// accepts must re-encode via AppendFrame to bytes that decode to the same
// header and payload. The committed corpus (testdata/fuzz/FuzzReadFrame)
// seeds valid frames of each type plus truncated and oversized shapes.
func FuzzReadFrame(f *testing.F) {
	seed := func(fr *Frame) { f.Add(AppendFrame(nil, fr)) }
	seed(&Frame{Version: V2, Encoding: EncBinary, Type: FrameExec, ID: 1, Payload: AppendRequest(nil, "SELECT 1")})
	seed(&Frame{Version: V2, Encoding: EncBinary, Type: FrameBatch, ID: 2, Payload: AppendBatchRequest(nil, []string{"SELECT 1", "SELECT 2"})})
	seed(&Frame{Version: V2, Encoding: EncBinary, Type: FrameResult, ID: 3})
	f.Add([]byte{Magic})                          // truncated header
	f.Add([]byte{0x00, 0x01, 0x02})               // bad magic
	f.Add(bytes.Repeat([]byte{Magic}, HeaderLen)) // insane declared length

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data), fuzzFrameMax)
		if err != nil {
			return
		}
		enc := AppendFrame(nil, fr)
		fr2, err := ReadFrame(bytes.NewReader(enc), fuzzFrameMax)
		if err != nil {
			t.Fatalf("re-decoding AppendFrame output failed: %v", err)
		}
		if fr2.Version != fr.Version || fr2.Encoding != fr.Encoding || fr2.Type != fr.Type || fr2.ID != fr.ID || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("frame round-trip mismatch: %+v != %+v", fr2, fr)
		}
	})
}

// FuzzDecodeRequestPayloads drives the request-side payload decoders of the binary codec with the
// same arbitrary input — each must reject garbage with an error, never a
// panic or an over-read — and checks encode/decode round-trips for the
// payloads that are accepted.
func FuzzDecodeRequestPayloads(f *testing.F) {
	f.Add(AppendRequest(nil, "SELECT co_name FROM customer"))
	f.Add(AppendBatchRequest(nil, []string{"SELECT 1", "INSERT INTO t VALUES (1 @ {source: 'a'})"}))
	f.Add(AppendTypedResponse(nil, &TypedResponse{}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if q, err := DecodeRequest(data); err == nil {
			rt, err := DecodeRequest(AppendRequest(nil, q))
			if err != nil || rt != q {
				t.Fatalf("request round-trip: %q -> %q, err=%v", q, rt, err)
			}
		}
		if qs, err := DecodeBatchRequest(data); err == nil {
			rt, err := DecodeBatchRequest(AppendBatchRequest(nil, qs))
			if err != nil || len(rt) != len(qs) {
				t.Fatalf("batch round-trip: %d -> %d stmts, err=%v", len(qs), len(rt), err)
			}
		}
		if v, _, err := ReadValue(data); err == nil {
			// Re-encoding an accepted value must itself decode cleanly.
			// (Equality is not asserted: NaN payloads survive the trip but
			// compare unequal by design.)
			if _, _, err := ReadValue(AppendValue(nil, v)); err != nil {
				t.Fatalf("value round-trip rejected re-encoding: %v", err)
			}
		}
		_, _ = DecodeTypedResponse(data)
		_, _ = DecodeTypedBatch(data)
	})
}
