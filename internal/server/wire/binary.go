package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/value"
)

// EncBinary payload codec: varint-framed fields and typed cells. Cells
// travel as value.Value (kind byte + compact payload) rather than QQL
// literal strings, so neither side pays JSON string escaping or literal
// re-parsing. All varints are unsigned LEB128 (encoding/binary); signed
// quantities are zigzag-folded first.
//
//	request  (FrameExec):   string q
//	request  (FrameBatch):  uvarint count, count × string
//	response (FrameResult): TypedResponse
//	response (FrameBatchResult): uvarint count, count × TypedResponse
//
//	TypedResponse: uvarint n, string msg, string plan, string err,
//	               uvarint ncols, ncols × string,
//	               uvarint nrows, nrows × (uvarint ncells, ncells × cell)
//	string:        uvarint length, length × byte
//	cell:          kind byte, then per kind:
//	               null (nothing) | bool (1 byte) | int (zigzag varint) |
//	               float (8-byte IEEE 754 big-endian) | string |
//	               time (zigzag unix seconds, uvarint nanoseconds) |
//	               duration (zigzag varint nanoseconds)

// TypedResponse is the binary-encoding response payload: the same shape as
// Response, with typed cells instead of rendered literals.
type TypedResponse struct {
	Cols []string
	Rows [][]value.Value
	N    int
	Msg  string
	Plan string
	Err  string
}

// Response converts to the wire Response used by the string-based client
// API: cells are rendered as QQL literals into Rows, and the typed cells
// are kept in Values.
func (t *TypedResponse) Response() *Response {
	r := &Response{Cols: t.Cols, N: t.N, Msg: t.Msg, Plan: t.Plan, Err: t.Err, Values: t.Rows}
	if len(t.Rows) > 0 {
		r.Rows = make([][]string, len(t.Rows))
		for i, row := range t.Rows {
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.Literal()
			}
			r.Rows[i] = cells
		}
	}
	return r
}

// errShortPayload reports a truncated binary payload.
var errShortPayload = errors.New("wire: truncated binary payload")

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errShortPayload
	}
	return x, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(b)) {
		return "", nil, errShortPayload
	}
	return string(b[:n]), b[n:], nil
}

func zigzag(i int64) uint64   { return uint64((i << 1) ^ (i >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendValue appends the binary cell encoding of v.
func AppendValue(b []byte, v value.Value) []byte {
	b = append(b, byte(v.Kind()))
	switch v.Kind() {
	case value.KindNull:
	case value.KindBool:
		if v.AsBool() {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case value.KindInt:
		b = binary.AppendUvarint(b, zigzag(v.AsInt()))
	case value.KindFloat:
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.AsFloat()))
	case value.KindString:
		b = appendString(b, v.AsString())
	case value.KindTime:
		t := v.AsTime()
		b = binary.AppendUvarint(b, zigzag(t.Unix()))
		b = binary.AppendUvarint(b, uint64(t.Nanosecond()))
	case value.KindDuration:
		b = binary.AppendUvarint(b, zigzag(int64(v.AsDuration())))
	}
	return b
}

// ReadValue decodes one cell, returning it and the remaining bytes.
func ReadValue(b []byte) (value.Value, []byte, error) {
	if len(b) == 0 {
		return value.Null, nil, errShortPayload
	}
	kind, b := value.Kind(b[0]), b[1:]
	switch kind {
	case value.KindNull:
		return value.Null, b, nil
	case value.KindBool:
		if len(b) == 0 {
			return value.Null, nil, errShortPayload
		}
		return value.Bool(b[0] != 0), b[1:], nil
	case value.KindInt:
		u, b, err := readUvarint(b)
		if err != nil {
			return value.Null, nil, err
		}
		return value.Int(unzigzag(u)), b, nil
	case value.KindFloat:
		if len(b) < 8 {
			return value.Null, nil, errShortPayload
		}
		return value.Float(math.Float64frombits(binary.BigEndian.Uint64(b[:8]))), b[8:], nil
	case value.KindString:
		s, b, err := readString(b)
		if err != nil {
			return value.Null, nil, err
		}
		return value.Str(s), b, nil
	case value.KindTime:
		sec, b, err := readUvarint(b)
		if err != nil {
			return value.Null, nil, err
		}
		nsec, b, err := readUvarint(b)
		if err != nil {
			return value.Null, nil, err
		}
		if nsec >= uint64(time.Second) {
			return value.Null, nil, fmt.Errorf("wire: time cell nanoseconds %d out of range", nsec)
		}
		return value.Time(time.Unix(unzigzag(sec), int64(nsec)).UTC()), b, nil
	case value.KindDuration:
		u, b, err := readUvarint(b)
		if err != nil {
			return value.Null, nil, err
		}
		return value.Duration(time.Duration(unzigzag(u))), b, nil
	}
	return value.Null, nil, fmt.Errorf("wire: unknown cell kind 0x%02x", byte(kind))
}

// AppendRequest appends the binary FrameExec payload.
func AppendRequest(b []byte, q string) []byte { return appendString(b, q) }

// DecodeRequest decodes a binary FrameExec payload.
func DecodeRequest(b []byte) (string, error) {
	q, rest, err := readString(b)
	if err != nil {
		return "", err
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("wire: %d trailing bytes after request", len(rest))
	}
	return q, nil
}

// AppendBatchRequest appends the binary FrameBatch payload.
func AppendBatchRequest(b []byte, qs []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(qs)))
	for _, q := range qs {
		b = appendString(b, q)
	}
	return b
}

// DecodeBatchRequest decodes a binary FrameBatch payload.
func DecodeBatchRequest(b []byte) ([]string, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b)) { // each statement costs at least its length byte
		return nil, errShortPayload
	}
	qs := make([]string, n)
	for i := range qs {
		if qs[i], b, err = readString(b); err != nil {
			return nil, err
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch request", len(b))
	}
	return qs, nil
}

// AppendTypedResponse appends the binary encoding of t.
func AppendTypedResponse(b []byte, t *TypedResponse) []byte {
	b = binary.AppendUvarint(b, uint64(t.N))
	b = appendString(b, t.Msg)
	b = appendString(b, t.Plan)
	b = appendString(b, t.Err)
	b = binary.AppendUvarint(b, uint64(len(t.Cols)))
	for _, c := range t.Cols {
		b = appendString(b, c)
	}
	b = binary.AppendUvarint(b, uint64(len(t.Rows)))
	for _, row := range t.Rows {
		b = binary.AppendUvarint(b, uint64(len(row)))
		for _, v := range row {
			b = AppendValue(b, v)
		}
	}
	return b
}

func readTypedResponse(b []byte) (*TypedResponse, []byte, error) {
	t := &TypedResponse{}
	n, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	t.N = int(n)
	if t.Msg, b, err = readString(b); err != nil {
		return nil, nil, err
	}
	if t.Plan, b, err = readString(b); err != nil {
		return nil, nil, err
	}
	if t.Err, b, err = readString(b); err != nil {
		return nil, nil, err
	}
	ncols, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if ncols > uint64(len(b)) {
		return nil, nil, errShortPayload
	}
	if ncols > 0 {
		t.Cols = make([]string, ncols)
		for i := range t.Cols {
			if t.Cols[i], b, err = readString(b); err != nil {
				return nil, nil, err
			}
		}
	}
	nrows, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if nrows > uint64(len(b)) {
		return nil, nil, errShortPayload
	}
	if nrows > 0 {
		t.Rows = make([][]value.Value, nrows)
		for i := range t.Rows {
			ncells, rest, err := readUvarint(b)
			if err != nil {
				return nil, nil, err
			}
			b = rest
			if ncells > uint64(len(b)) {
				return nil, nil, errShortPayload
			}
			row := make([]value.Value, ncells)
			for j := range row {
				if row[j], b, err = ReadValue(b); err != nil {
					return nil, nil, err
				}
			}
			t.Rows[i] = row
		}
	}
	return t, b, nil
}

// DecodeTypedResponse decodes a binary FrameResult payload.
func DecodeTypedResponse(b []byte) (*TypedResponse, error) {
	t, rest, err := readTypedResponse(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after response", len(rest))
	}
	return t, nil
}

// AppendTypedBatch appends the binary FrameBatchResult payload.
func AppendTypedBatch(b []byte, resps []*TypedResponse) []byte {
	b = binary.AppendUvarint(b, uint64(len(resps)))
	for _, t := range resps {
		b = AppendTypedResponse(b, t)
	}
	return b
}

// DecodeTypedBatch decodes a binary FrameBatchResult payload.
func DecodeTypedBatch(b []byte) ([]*TypedResponse, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b)) {
		return nil, errShortPayload
	}
	resps := make([]*TypedResponse, n)
	for i := range resps {
		if resps[i], b, err = readTypedResponse(b); err != nil {
			return nil, err
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch response", len(b))
	}
	return resps, nil
}
