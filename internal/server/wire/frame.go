package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// V2 frame layout, both directions (all integers big-endian):
//
//	offset 0   Magic (0xF7)
//	offset 1   protocol version (V2)
//	offset 2   payload encoding (EncJSON | EncBinary)
//	offset 3   frame type (FrameExec | FrameBatch | FrameResult | FrameBatchResult)
//	offset 4   request ID, uint64 — echoed on the response that answers it
//	offset 12  payload length, uint32
//	offset 16  payload
const (
	// Magic is the first byte of every v2 frame. It is not valid anywhere
	// in a line of UTF-8 JSON text, so the server can tell a v2 client from
	// a legacy v1 client by the first byte of the connection.
	Magic byte = 0xF7
	// V2 is the current protocol version, carried in every frame header.
	V2 byte = 2

	// HeaderLen is the fixed frame header size.
	HeaderLen = 16
)

// Encoding selects how frame payloads are marshalled. Defining it as its
// own type (rather than a bare byte) makes every switch over an Encoding
// visible to the exhaustive analyzer: add a codec and the compiler-adjacent
// tooling finds every dispatch that must learn about it.
type Encoding byte

// Payload encodings.
const (
	// EncJSON marshals the payload structs as JSON (compatible shapes with
	// the v1 line protocol).
	EncJSON Encoding = 0
	// EncBinary uses the compact typed-cell codec of binary.go.
	EncBinary Encoding = 1
)

// FrameType tags the payload shape of one frame. Like Encoding it is a
// defined type so type/const membership is a checkable fact.
type FrameType byte

// Frame types. Requests have the high bit clear, responses set.
const (
	// FrameExec is a request carrying one script (Request).
	FrameExec FrameType = 0x01
	// FrameBatch is a request carrying several statements (BatchRequest).
	FrameBatch FrameType = 0x02
	// FrameResult answers FrameExec with one Response.
	FrameResult FrameType = 0x81
	// FrameBatchResult answers FrameBatch with a BatchResponse.
	FrameBatchResult FrameType = 0x82
)

// ErrFrameTooLarge reports a frame whose declared payload length exceeds
// the reader's cap. ReadFrame discards the oversized payload before
// returning it, so the connection remains usable: the caller can answer
// with a structured error and keep reading.
var ErrFrameTooLarge = errors.New("wire: frame payload exceeds size cap")

// ErrBadMagic reports a frame that does not start with Magic; the stream
// is unsynchronized and the connection should be closed.
var ErrBadMagic = errors.New("wire: bad frame magic")

// Frame is one v2 protocol unit.
type Frame struct {
	Version  byte
	Encoding Encoding
	Type     FrameType
	// ID is chosen by the client per request and echoed on the response,
	// letting a pipelined client demultiplex in-flight requests.
	ID      uint64
	Payload []byte
}

// AppendFrame appends the encoded frame to buf and returns the extended
// slice.
func AppendFrame(buf []byte, f *Frame) []byte {
	var hdr [HeaderLen]byte
	hdr[0] = Magic
	hdr[1] = f.Version
	hdr[2] = byte(f.Encoding)
	hdr[3] = byte(f.Type)
	binary.BigEndian.PutUint64(hdr[4:12], f.ID)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, f.Payload...)
}

// WriteFrame writes one frame to w: the fixed header, then the payload
// directly — no per-frame copy of the payload. Callers stream frames
// through a bufio.Writer, so the two writes coalesce.
func WriteFrame(w io.Writer, f *Frame) error {
	var hdr [HeaderLen]byte
	hdr[0] = Magic
	hdr[1] = f.Version
	hdr[2] = byte(f.Encoding)
	hdr[3] = byte(f.Type)
	binary.BigEndian.PutUint64(hdr[4:12], f.ID)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) == 0 {
		return nil
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame reads one frame from r, capping the payload at max bytes
// (max <= 0 means MaxFrameBytes). On ErrFrameTooLarge the oversized
// payload has been consumed and the returned frame carries the header
// fields with a nil payload, so the caller may report the error in-band
// and continue reading the connection.
func ReadFrame(r io.Reader, max int) (*Frame, error) {
	if max <= 0 {
		max = MaxFrameBytes
	}
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != Magic {
		return nil, fmt.Errorf("%w: 0x%02x", ErrBadMagic, hdr[0])
	}
	f := &Frame{
		Version:  hdr[1],
		Encoding: Encoding(hdr[2]),
		Type:     FrameType(hdr[3]),
		ID:       binary.BigEndian.Uint64(hdr[4:12]),
	}
	length := binary.BigEndian.Uint32(hdr[12:16])
	if int64(length) > int64(max) {
		if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
			return nil, err
		}
		return f, fmt.Errorf("%w: %d bytes > %d", ErrFrameTooLarge, length, max)
	}
	f.Payload = make([]byte, length)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return nil, err
	}
	return f, nil
}
