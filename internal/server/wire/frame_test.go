package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Version: V2, Encoding: EncJSON, Type: FrameExec, ID: 1, Payload: []byte(`{"q":"SELECT 1"}`)},
		{Version: V2, Encoding: EncBinary, Type: FrameResult, ID: 1<<64 - 1, Payload: AppendTypedResponse(nil, &TypedResponse{Msg: "ok"})},
		{Version: V2, Encoding: EncBinary, Type: FrameBatch, ID: 7, Payload: nil},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range frames {
		got, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Version != want.Version || got.Encoding != want.Encoding ||
			got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("frame %d drift: %+v -> %+v", i, want, got)
		}
	}
	if _, err := ReadFrame(r, 0); err != io.EOF {
		t.Errorf("after last frame: %v, want EOF", err)
	}
}

// TestFrameTooLargeResyncs: an oversized frame is reported with its header
// and discarded payload so the stream stays usable for the next frame.
func TestFrameTooLargeResyncs(t *testing.T) {
	var buf bytes.Buffer
	big := &Frame{Version: V2, Encoding: EncBinary, Type: FrameExec, ID: 9, Payload: make([]byte, 2048)}
	small := &Frame{Version: V2, Encoding: EncBinary, Type: FrameExec, ID: 10, Payload: []byte{1}}
	if err := WriteFrame(&buf, big); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, small); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	f, err := ReadFrame(r, 1024)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if f == nil || f.ID != 9 || f.Payload != nil {
		t.Fatalf("oversized frame header = %+v", f)
	}
	f, err = ReadFrame(r, 1024)
	if err != nil || f.ID != 10 {
		t.Fatalf("stream desynced after oversized frame: %+v, %v", f, err)
	}
}

func TestFrameBadMagic(t *testing.T) {
	r := bufio.NewReader(bytes.NewReader([]byte(`{"q":"SELECT 1"}` + "\n")))
	if _, err := ReadFrame(r, 0); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	full := AppendFrame(nil, &Frame{Version: V2, Type: FrameExec, ID: 3, Payload: []byte("abcdef")})
	for cut := 1; cut < len(full); cut++ {
		r := bufio.NewReader(bytes.NewReader(full[:cut]))
		if _, err := ReadFrame(r, 0); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
