package server_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/storage"
)

// startServer spins up a server on a random localhost port and returns it
// with a cleanup that shuts it down.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.Now.IsZero() {
		cfg.Now = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	srv := server.New(storage.NewCatalog(), cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil && !strings.Contains(err.Error(), "closed") {
			t.Errorf("serve: %v", err)
		}
	})
	return srv
}

func dial(t *testing.T, srv *server.Server) *client.Client {
	t.Helper()
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerBasicRoundtrip(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dial(t, srv)

	msg, err := c.Exec(`CREATE TABLE customer (
		co_name string REQUIRED,
		employees int QUALITY (creation_time time, source string)
	) KEY (co_name) STRICT`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "created table customer") {
		t.Errorf("msg = %q", msg)
	}
	if _, err := c.Exec(`INSERT INTO customer VALUES
		('Fruit Co', 4004 @ {creation_time: t'1991-10-03T00:00:00Z', source: 'Nexis'}),
		('Nut Co', 700 @ {creation_time: t'1991-10-09T00:00:00Z', source: 'estimate'})`); err != nil {
		t.Fatal(err)
	}

	cols, rows, err := c.Query(`SELECT co_name, employees FROM customer
		WITH QUALITY employees@source != 'estimate' ORDER BY co_name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != "co_name" || cols[1] != "employees" {
		t.Errorf("cols = %v", cols)
	}
	if len(rows) != 1 || rows[0][0] != "'Fruit Co'" || rows[0][1] != "4004" {
		t.Errorf("rows = %v", rows)
	}

	// EXPLAIN comes back in the plan field.
	resp, err := c.Do(`EXPLAIN SELECT co_name FROM customer WHERE co_name = 'Nut Co'`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" || !strings.Contains(resp.Plan, "customer") {
		t.Errorf("explain response = %+v", resp)
	}

	// Server-side errors arrive as Err, and the connection survives them.
	if _, _, err := c.Query(`SELECT * FROM nonexistent`); err == nil ||
		!strings.Contains(err.Error(), "unknown table") {
		t.Errorf("err = %v", err)
	}
	n, err := c.QueryInt(`SELECT COUNT(*) AS n FROM customer`)
	if err != nil || n != 2 {
		t.Errorf("count = %d, %v", n, err)
	}

	st := srv.Stats()
	if st.Queries < 5 || st.Errors != 1 || st.Accepted != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalLatency <= 0 {
		t.Errorf("latency not measured: %+v", st)
	}
}

func TestServerSessionIsolationAndSharedData(t *testing.T) {
	srv := startServer(t, server.Config{})
	a := dial(t, srv)
	b := dial(t, srv)
	if _, err := a.Exec(`CREATE TABLE t (a int); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	// A second connection sees data created by the first: one catalog.
	n, err := b.QueryInt(`SELECT COUNT(*) AS n FROM t`)
	if err != nil || n != 1 {
		t.Fatalf("count over second conn = %d, %v", n, err)
	}
}

func TestServerMaxConns(t *testing.T) {
	srv := startServer(t, server.Config{MaxConns: 2})
	a := dial(t, srv)
	b := dial(t, srv)
	// Exercise both admitted conns so the accept loop has registered them
	// before the third dial arrives.
	if _, err := a.Exec(`SHOW TABLES`); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec(`SHOW TABLES`); err != nil {
		t.Fatal(err)
	}
	// The third connection is rejected with an explanatory error line.
	c3, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	resp, err := c3.Do(`SHOW TABLES`)
	if err == nil {
		if resp.Err == "" || !strings.Contains(resp.Err, "too many connections") {
			t.Errorf("expected rejection, got %+v", resp)
		}
	}
	// err != nil is also acceptable: the server may close before the
	// client's request line is read.
	if srv.Stats().Rejected != 1 {
		t.Errorf("rejected = %d, want 1", srv.Stats().Rejected)
	}
}

func TestServerPlanCacheShared(t *testing.T) {
	srv := startServer(t, server.Config{})
	a := dial(t, srv)
	b := dial(t, srv)
	if _, err := a.Exec(`CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	q := `SELECT COUNT(*) AS n FROM t WHERE a >= 1`
	if _, err := a.QueryInt(q); err != nil {
		t.Fatal(err)
	}
	// The second session reuses the first session's parse.
	if _, err := b.QueryInt(q); err != nil {
		t.Fatal(err)
	}
	st := srv.Cache().Stats()
	if st.Hits+st.PlanHits == 0 {
		t.Errorf("cache hits = 0 across both tiers (stats %+v)", st)
	}
}

// TestServerConcurrentStress is the acceptance-criteria test: >= 32
// concurrent client connections hammering one table with mixed
// INSERT/SELECT/UPDATE under -race, ending with a consistent row count and
// plan-cache hits on the hot statements.
func TestServerConcurrentStress(t *testing.T) {
	srv := startServer(t, server.Config{MaxConns: 128})
	boot := dial(t, srv)
	if _, err := boot.Exec(`CREATE TABLE stress (
		id string REQUIRED,
		n int,
		note string QUALITY (source string)
	) KEY (id) STRICT;
	CREATE INDEX ON stress (n) USING BTREE`); err != nil {
		t.Fatal(err)
	}

	const (
		workers       = 32
		rowsPerWorker = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < rowsPerWorker; i++ {
				id := fmt.Sprintf("w%02d-%03d", w, i)
				if _, err := c.Exec(fmt.Sprintf(
					`INSERT INTO stress VALUES ('%s', %d, 'x' @ {source: 'w%02d'})`,
					id, i, w)); err != nil {
					errs <- fmt.Errorf("insert %s: %w", id, err)
					return
				}
				// Hot statement: identical text across all workers, so the
				// plan cache serves every worker after the first parse.
				if _, err := c.QueryInt(`SELECT COUNT(*) AS n FROM stress WHERE n >= 0`); err != nil {
					errs <- fmt.Errorf("select: %w", err)
					return
				}
				if i%5 == 0 {
					if _, err := c.Exec(fmt.Sprintf(
						`UPDATE stress SET n = n + 1000 WHERE id = '%s'`, id)); err != nil {
						errs <- fmt.Errorf("update %s: %w", id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total, err := boot.QueryInt(`SELECT COUNT(*) AS n FROM stress`)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(workers * rowsPerWorker); total != want {
		t.Errorf("row count = %d, want %d", total, want)
	}
	// Every worker bumped ceil(25/5) = 5 rows by 1000.
	bumped, err := boot.QueryInt(`SELECT COUNT(*) AS n FROM stress WHERE n >= 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(workers * 5); bumped != want {
		t.Errorf("bumped rows = %d, want %d", bumped, want)
	}
	st := srv.Stats()
	if st.Cache.Hits+st.Cache.PlanHits == 0 {
		t.Errorf("plan cache hits = 0 under stress; stats %+v", st.Cache)
	}
	if st.Errors != 0 {
		t.Errorf("server errors = %d, want 0", st.Errors)
	}
	if st.Accepted < workers {
		t.Errorf("accepted = %d, want >= %d", st.Accepted, workers)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	srv := server.New(storage.NewCatalog(), server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`CREATE TABLE t (a int)`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("serve returned %v, want wrapped net.ErrClosed", err)
	}
	// The connection is closed; further calls fail with a transport error.
	if _, err := c.Do(`SHOW TABLES`); err == nil {
		t.Error("expected transport error after shutdown")
	}
	c.Close()
	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}
