package server

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tag"
	"repro/internal/value"
)

// tableQuality is the cached quality-of-data profile of one table at one
// data version. The paper's premise is that data carries objective quality
// indicators ("source", "creation_time", ...) alongside values; these
// aggregates surface that metadata operationally: how much data there is,
// where it came from, how old it is, and how completely it is tagged.
type tableQuality struct {
	ver     uint64
	rows    int64
	cells   int64
	tagged  int64            // cells carrying at least one indicator tag
	sources map[string]int64 // rows credited to each source
	oldest  time.Time        // min/max creation_time tag across cells;
	newest  time.Time        // zero when no cell carries one
}

// qualityCollector derives per-table quality gauges from the catalog on
// demand. Profiles are cached keyed by each table's DataVersion, so a
// scrape after a quiet period costs one atomic load per table, while any
// DML (insert/update/delete bumps the version) triggers a recompute of
// exactly the mutated tables on the next scrape.
type qualityCollector struct {
	cat *storage.Catalog
	mu  sync.Mutex
	byT map[string]*tableQuality
}

func newQualityCollector(cat *storage.Catalog) *qualityCollector {
	return &qualityCollector{cat: cat, byT: make(map[string]*tableQuality)}
}

// profile returns the table's quality profile, recomputing it only when the
// table's data version moved since the last call.
func (q *qualityCollector) profile(name string, tbl *storage.Table) *tableQuality {
	ver := tbl.DataVersion()
	q.mu.Lock()
	cached, ok := q.byT[name]
	q.mu.Unlock()
	if ok && cached.ver == ver {
		return cached
	}
	tq := computeQuality(tbl, ver)
	q.mu.Lock()
	q.byT[name] = tq
	q.mu.Unlock()
	return tq
}

func computeQuality(tbl *storage.Table, ver uint64) *tableQuality {
	tq := &tableQuality{ver: ver, sources: make(map[string]int64)}
	var rowSources []string
	// The profiler only reads cells, so it rides the zero-clone shared
	// scan and recycles one segment buffer for the whole pass.
	var buf []relation.Tuple
	for si, n := 0, tbl.Segments(); si < n; si++ {
		buf = tbl.ScanSegmentRowsSharedInto(si, buf)
		for ri := range buf {
			row := &buf[ri]
			tq.rows++
			rowSources = rowSources[:0]
			for _, c := range row.Cells {
				tq.cells++
				if !c.Tags.IsEmpty() {
					tq.tagged++
				}
				if v, ok := c.Tags.Get("source"); ok && v.Kind() == value.KindString {
					rowSources = append(rowSources, v.AsString())
				}
				rowSources = append(rowSources, c.Sources...)
				if v, ok := c.Tags.Get("creation_time"); ok && v.Kind() == value.KindTime {
					t := v.AsTime()
					if tq.oldest.IsZero() || t.Before(tq.oldest) {
						tq.oldest = t
					}
					if tq.newest.IsZero() || t.After(tq.newest) {
						tq.newest = t
					}
				}
			}
			// Credit each source once per row, whichever cells named it and
			// whether it arrived as a "source" tag or a polygen source set.
			for _, src := range tag.NewSources(rowSources...) {
				tq.sources[src]++
			}
		}
	}
	return tq
}

// publish rebuilds the qqld_table_* gauge family in reg from the current
// catalog. Dropping the prefix first means gauges for dropped tables and
// vanished sources disappear instead of sticking at their last value.
func (q *qualityCollector) publish(reg *metrics.Registry) {
	reg.DropPrefix("qqld_table_")
	for _, name := range q.cat.Names() {
		tbl, ok := q.cat.Get(name)
		if !ok {
			continue
		}
		tq := q.profile(name, tbl)
		lt := metrics.L("table", name)
		reg.Gauge("qqld_table_rows", lt).SetInt(tq.rows)
		reg.Gauge("qqld_table_cells", lt).SetInt(tq.cells)
		reg.Gauge("qqld_table_tagged_cells", lt).SetInt(tq.tagged)
		completeness := 0.0
		if tq.cells > 0 {
			completeness = float64(tq.tagged) / float64(tq.cells)
		}
		reg.Gauge("qqld_table_tag_completeness", lt).Set(completeness)
		if !tq.oldest.IsZero() {
			reg.Gauge("qqld_table_oldest_creation_seconds", lt).SetInt(tq.oldest.Unix())
			reg.Gauge("qqld_table_newest_creation_seconds", lt).SetInt(tq.newest.Unix())
		}
		for src, n := range tq.sources {
			reg.Gauge("qqld_table_source_rows", lt, metrics.L("source", src)).SetInt(n)
		}
	}
}

func registerQualityHelp(reg *metrics.Registry) {
	reg.Help("qqld_table_rows", "Live rows per table.")
	reg.Help("qqld_table_cells", "Data cells per table (rows x columns).")
	reg.Help("qqld_table_tagged_cells", "Cells carrying at least one quality indicator tag.")
	reg.Help("qqld_table_tag_completeness", "Fraction of cells carrying quality tags.")
	reg.Help("qqld_table_oldest_creation_seconds", "Oldest creation_time tag in the table, unix seconds.")
	reg.Help("qqld_table_newest_creation_seconds", "Newest creation_time tag in the table, unix seconds.")
	reg.Help("qqld_table_source_rows", "Rows crediting each data source (source tag or polygen source set).")
}
