// Package er implements the entity-relationship substrate that Step 1 of
// the paper's methodology ("establishing the application view") produces.
// The paper's Figure 3 — client / trade / company-stock — is one such model.
//
// The model is deliberately close to the classic ER vocabulary the paper
// cites (Teorey 1990; Navathe, Batini & Ceri 1992): entities with
// attributes, binary relationships with cardinalities, and relationship
// attributes (the trade's date, quantity, and price live on the
// relationship, exactly as drawn in Figure 3).
package er

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Cardinality is one side of a relationship's degree.
type Cardinality uint8

// Cardinalities.
const (
	One Cardinality = iota
	Many
)

// String renders "1" or "N".
func (c Cardinality) String() string {
	if c == One {
		return "1"
	}
	return "N"
}

// Attribute is a named, typed attribute of an entity or relationship.
type Attribute struct {
	// Name is unique within its owner.
	Name string
	// Kind is the attribute's value kind.
	Kind value.Kind
	// Identifying marks the attribute as part of the owner's identifier
	// (e.g. account number for client, ticker symbol for company stock).
	Identifying bool
	// Doc documents the attribute.
	Doc string
}

// Entity is an entity type with its attributes.
type Entity struct {
	Name  string
	Attrs []Attribute
	Doc   string
}

// Attr returns the named attribute.
func (e *Entity) Attr(name string) (Attribute, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// Identifier lists the identifying attribute names.
func (e *Entity) Identifier() []string {
	var out []string
	for _, a := range e.Attrs {
		if a.Identifying {
			out = append(out, a.Name)
		}
	}
	return out
}

// Relationship is a binary relationship between two entities, optionally
// carrying its own attributes.
type Relationship struct {
	Name string
	// Left and Right are entity names.
	Left, Right string
	// LeftCard is the cardinality on the left side (how many left
	// instances relate to one right instance), RightCard symmetrically.
	LeftCard, RightCard Cardinality
	Attrs               []Attribute
	Doc                 string
}

// Attr returns the named relationship attribute.
func (r *Relationship) Attr(name string) (Attribute, bool) {
	for _, a := range r.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// Model is a complete application view: the output of methodology Step 1.
type Model struct {
	Name          string
	Entities      []*Entity
	Relationships []*Relationship
	Doc           string
}

// NewModel returns an empty model.
func NewModel(name string) *Model { return &Model{Name: name} }

// AddEntity appends an entity; duplicate names are rejected by Validate.
func (m *Model) AddEntity(e *Entity) *Model {
	m.Entities = append(m.Entities, e)
	return m
}

// AddRelationship appends a relationship.
func (m *Model) AddRelationship(r *Relationship) *Model {
	m.Relationships = append(m.Relationships, r)
	return m
}

// Entity returns the named entity.
func (m *Model) Entity(name string) (*Entity, bool) {
	for _, e := range m.Entities {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// Relationship returns the named relationship.
func (m *Model) Relationship(name string) (*Relationship, bool) {
	for _, r := range m.Relationships {
		if r.Name == name {
			return r, true
		}
	}
	return nil, false
}

// Validate checks structural integrity: unique names, known endpoints,
// unique attribute names per owner, identifiers present.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("er: model has empty name")
	}
	ents := map[string]bool{}
	for _, e := range m.Entities {
		if e.Name == "" {
			return fmt.Errorf("er %s: entity with empty name", m.Name)
		}
		if ents[e.Name] {
			return fmt.Errorf("er %s: duplicate entity %q", m.Name, e.Name)
		}
		ents[e.Name] = true
		if err := checkAttrs(e.Name, e.Attrs); err != nil {
			return err
		}
		if len(e.Attrs) == 0 {
			return fmt.Errorf("er %s: entity %q has no attributes", m.Name, e.Name)
		}
	}
	rels := map[string]bool{}
	for _, r := range m.Relationships {
		if r.Name == "" {
			return fmt.Errorf("er %s: relationship with empty name", m.Name)
		}
		if rels[r.Name] || ents[r.Name] {
			return fmt.Errorf("er %s: duplicate name %q", m.Name, r.Name)
		}
		rels[r.Name] = true
		if !ents[r.Left] {
			return fmt.Errorf("er %s: relationship %q references unknown entity %q", m.Name, r.Name, r.Left)
		}
		if !ents[r.Right] {
			return fmt.Errorf("er %s: relationship %q references unknown entity %q", m.Name, r.Name, r.Right)
		}
		if err := checkAttrs(r.Name, r.Attrs); err != nil {
			return err
		}
	}
	return nil
}

func checkAttrs(owner string, attrs []Attribute) error {
	seen := map[string]bool{}
	for _, a := range attrs {
		if a.Name == "" {
			return fmt.Errorf("er: %s has attribute with empty name", owner)
		}
		if seen[a.Name] {
			return fmt.Errorf("er: %s has duplicate attribute %q", owner, a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// ElementKind distinguishes the addressable parts of a model.
type ElementKind uint8

// Element kinds.
const (
	KindEntity ElementKind = iota
	KindEntityAttr
	KindRelationship
	KindRelationshipAttr
)

// ElementRef addresses an entity, relationship, or one of their attributes —
// the granularity at which the methodology attaches quality parameters and
// indicators (Premise 1.3: quality may differ across entities, attributes,
// and instances).
type ElementRef struct {
	Kind  ElementKind
	Owner string // entity or relationship name
	Attr  string // attribute name, empty for entity/relationship refs
}

// EntityRef addresses an entity.
func EntityRef(name string) ElementRef { return ElementRef{Kind: KindEntity, Owner: name} }

// AttrRef addresses an entity attribute.
func AttrRef(entity, attr string) ElementRef {
	return ElementRef{Kind: KindEntityAttr, Owner: entity, Attr: attr}
}

// RelRef addresses a relationship.
func RelRef(name string) ElementRef { return ElementRef{Kind: KindRelationship, Owner: name} }

// RelAttrRef addresses a relationship attribute.
func RelAttrRef(rel, attr string) ElementRef {
	return ElementRef{Kind: KindRelationshipAttr, Owner: rel, Attr: attr}
}

// String renders "entity", "entity.attr", "rel()", or "rel().attr".
func (r ElementRef) String() string {
	switch r.Kind {
	case KindEntity:
		return r.Owner
	case KindEntityAttr:
		return r.Owner + "." + r.Attr
	case KindRelationship:
		return r.Owner + "()"
	default:
		return r.Owner + "()." + r.Attr
	}
}

// ParseElementRef parses the String form back into a reference:
// "entity", "entity.attr", "rel()", "rel().attr".
func ParseElementRef(s string) (ElementRef, error) {
	if s == "" {
		return ElementRef{}, fmt.Errorf("er: empty element reference")
	}
	if i := strings.Index(s, "()"); i >= 0 {
		owner := s[:i]
		rest := s[i+2:]
		if owner == "" {
			return ElementRef{}, fmt.Errorf("er: bad element reference %q", s)
		}
		if rest == "" {
			return RelRef(owner), nil
		}
		if !strings.HasPrefix(rest, ".") || len(rest) < 2 {
			return ElementRef{}, fmt.Errorf("er: bad element reference %q", s)
		}
		return RelAttrRef(owner, rest[1:]), nil
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		if i == 0 || i == len(s)-1 {
			return ElementRef{}, fmt.Errorf("er: bad element reference %q", s)
		}
		return AttrRef(s[:i], s[i+1:]), nil
	}
	return EntityRef(s), nil
}

// Resolve verifies that the reference exists in the model.
func (r ElementRef) Resolve(m *Model) error {
	switch r.Kind {
	case KindEntity:
		if _, ok := m.Entity(r.Owner); !ok {
			return fmt.Errorf("er: unknown entity %q", r.Owner)
		}
	case KindEntityAttr:
		e, ok := m.Entity(r.Owner)
		if !ok {
			return fmt.Errorf("er: unknown entity %q", r.Owner)
		}
		if _, ok := e.Attr(r.Attr); !ok {
			return fmt.Errorf("er: entity %q has no attribute %q", r.Owner, r.Attr)
		}
	case KindRelationship:
		if _, ok := m.Relationship(r.Owner); !ok {
			return fmt.Errorf("er: unknown relationship %q", r.Owner)
		}
	case KindRelationshipAttr:
		rel, ok := m.Relationship(r.Owner)
		if !ok {
			return fmt.Errorf("er: unknown relationship %q", r.Owner)
		}
		if _, ok := rel.Attr(r.Attr); !ok {
			return fmt.Errorf("er: relationship %q has no attribute %q", r.Owner, r.Attr)
		}
	}
	return nil
}

// AllElements enumerates every addressable element of the model in a
// deterministic order: entities, their attributes, relationships, theirs.
func (m *Model) AllElements() []ElementRef {
	var out []ElementRef
	ents := append([]*Entity(nil), m.Entities...)
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	for _, e := range ents {
		out = append(out, EntityRef(e.Name))
		for _, a := range e.Attrs {
			out = append(out, AttrRef(e.Name, a.Name))
		}
	}
	rels := append([]*Relationship(nil), m.Relationships...)
	sort.Slice(rels, func(i, j int) bool { return rels[i].Name < rels[j].Name })
	for _, r := range rels {
		out = append(out, RelRef(r.Name))
		for _, a := range r.Attrs {
			out = append(out, RelAttrRef(r.Name, a.Name))
		}
	}
	return out
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	out := &Model{Name: m.Name, Doc: m.Doc}
	for _, e := range m.Entities {
		ce := &Entity{Name: e.Name, Doc: e.Doc, Attrs: append([]Attribute(nil), e.Attrs...)}
		out.Entities = append(out.Entities, ce)
	}
	for _, r := range m.Relationships {
		cr := &Relationship{Name: r.Name, Left: r.Left, Right: r.Right,
			LeftCard: r.LeftCard, RightCard: r.RightCard, Doc: r.Doc,
			Attrs: append([]Attribute(nil), r.Attrs...)}
		out.Relationships = append(out.Relationships, cr)
	}
	return out
}

// Render draws the model as deterministic ASCII art in the style of the
// paper's Figure 3: entity boxes with attribute lists, diamond lines for
// relationships.
func (m *Model) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Application view: %s\n", m.Name)
	ents := append([]*Entity(nil), m.Entities...)
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	for _, e := range ents {
		b.WriteString(renderBox(e.Name, attrLines(e.Attrs)))
	}
	rels := append([]*Relationship(nil), m.Relationships...)
	sort.Slice(rels, func(i, j int) bool { return rels[i].Name < rels[j].Name })
	for _, r := range rels {
		fmt.Fprintf(&b, "  [%s] %s--<%s>--%s [%s]\n",
			r.Left, r.LeftCard, r.Name, r.RightCard, r.Right)
		for _, a := range r.Attrs {
			fmt.Fprintf(&b, "      <%s>.%s : %s\n", r.Name, a.Name, a.Kind)
		}
	}
	return b.String()
}

func attrLines(attrs []Attribute) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		line := a.Name + " : " + a.Kind.String()
		if a.Identifying {
			line = "*" + line
		} else {
			line = " " + line
		}
		out[i] = line
	}
	return out
}

func renderBox(title string, lines []string) string {
	width := len(title)
	for _, l := range lines {
		if len(l) > width {
			width = len(l)
		}
	}
	var b strings.Builder
	b.WriteString("  +" + strings.Repeat("-", width+2) + "+\n")
	fmt.Fprintf(&b, "  | %-*s |\n", width, title)
	b.WriteString("  +" + strings.Repeat("-", width+2) + "+\n")
	for _, l := range lines {
		fmt.Fprintf(&b, "  | %-*s |\n", width, l)
	}
	b.WriteString("  +" + strings.Repeat("-", width+2) + "+\n")
	return b.String()
}

// TradingModel builds the paper's Figure 3 application view: a stock trader
// keeps information about companies and clients' trades of company stocks.
func TradingModel() *Model {
	m := NewModel("trading")
	m.Doc = "Figure 3 of the paper: client trades company stock"
	m.AddEntity(&Entity{
		Name: "client",
		Doc:  "a brokerage client",
		Attrs: []Attribute{
			{Name: "account_number", Kind: value.KindInt, Identifying: true, Doc: "client identifier"},
			{Name: "name", Kind: value.KindString},
			{Name: "address", Kind: value.KindString},
			{Name: "telephone", Kind: value.KindString},
		},
	})
	m.AddEntity(&Entity{
		Name: "company_stock",
		Doc:  "a traded company stock",
		Attrs: []Attribute{
			{Name: "ticker_symbol", Kind: value.KindString, Identifying: true, Doc: "exchange identifier for the company"},
			{Name: "share_price", Kind: value.KindFloat},
			{Name: "research_report", Kind: value.KindString},
		},
	})
	m.AddRelationship(&Relationship{
		Name: "trade", Left: "client", Right: "company_stock",
		LeftCard: Many, RightCard: Many,
		Doc: "a buy/sell of company stock by a client",
		Attrs: []Attribute{
			{Name: "date", Kind: value.KindTime},
			{Name: "quantity", Kind: value.KindInt},
			{Name: "trade_price", Kind: value.KindFloat},
		},
	})
	return m
}
