package er

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestTradingModelValid(t *testing.T) {
	m := TradingModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	e, ok := m.Entity("client")
	if !ok {
		t.Fatal("client entity missing")
	}
	if got := e.Identifier(); len(got) != 1 || got[0] != "account_number" {
		t.Errorf("client identifier = %v", got)
	}
	r, ok := m.Relationship("trade")
	if !ok {
		t.Fatal("trade relationship missing")
	}
	if r.LeftCard != Many || r.RightCard != Many {
		t.Errorf("trade cardinalities = %v/%v", r.LeftCard, r.RightCard)
	}
	if _, ok := r.Attr("quantity"); !ok {
		t.Error("trade.quantity missing")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Model
	}{
		{"empty model name", func() *Model { return NewModel("") }},
		{"entity without attrs", func() *Model {
			return NewModel("m").AddEntity(&Entity{Name: "e"})
		}},
		{"duplicate entity", func() *Model {
			return NewModel("m").
				AddEntity(&Entity{Name: "e", Attrs: []Attribute{{Name: "a", Kind: value.KindInt}}}).
				AddEntity(&Entity{Name: "e", Attrs: []Attribute{{Name: "a", Kind: value.KindInt}}})
		}},
		{"duplicate attribute", func() *Model {
			return NewModel("m").AddEntity(&Entity{Name: "e",
				Attrs: []Attribute{{Name: "a", Kind: value.KindInt}, {Name: "a", Kind: value.KindInt}}})
		}},
		{"relationship to unknown entity", func() *Model {
			return NewModel("m").
				AddEntity(&Entity{Name: "e", Attrs: []Attribute{{Name: "a", Kind: value.KindInt}}}).
				AddRelationship(&Relationship{Name: "r", Left: "e", Right: "ghost"})
		}},
		{"relationship name collides with entity", func() *Model {
			return NewModel("m").
				AddEntity(&Entity{Name: "e", Attrs: []Attribute{{Name: "a", Kind: value.KindInt}}}).
				AddRelationship(&Relationship{Name: "e", Left: "e", Right: "e"})
		}},
	}
	for _, tc := range cases {
		if err := tc.build().Validate(); err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
		}
	}
}

func TestElementRefs(t *testing.T) {
	m := TradingModel()
	good := []ElementRef{
		EntityRef("client"),
		AttrRef("client", "telephone"),
		RelRef("trade"),
		RelAttrRef("trade", "quantity"),
	}
	for _, r := range good {
		if err := r.Resolve(m); err != nil {
			t.Errorf("Resolve(%s): %v", r, err)
		}
	}
	bad := []ElementRef{
		EntityRef("ghost"),
		AttrRef("client", "ghost"),
		AttrRef("ghost", "x"),
		RelRef("ghost"),
		RelAttrRef("trade", "ghost"),
		RelAttrRef("ghost", "x"),
	}
	for _, r := range bad {
		if err := r.Resolve(m); err == nil {
			t.Errorf("Resolve(%s) should fail", r)
		}
	}
	// String forms.
	if EntityRef("e").String() != "e" || AttrRef("e", "a").String() != "e.a" ||
		RelRef("r").String() != "r()" || RelAttrRef("r", "a").String() != "r().a" {
		t.Error("ElementRef.String forms wrong")
	}
}

func TestAllElementsDeterministic(t *testing.T) {
	m := TradingModel()
	a := m.AllElements()
	b := m.AllElements()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("AllElements lens: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("AllElements not deterministic at %d", i)
		}
	}
	// client(4 attrs)+1 + company_stock(3)+1 + trade(3)+1 = 13
	if len(a) != 13 {
		t.Errorf("AllElements = %d elements", len(a))
	}
}

func TestCloneIndependence(t *testing.T) {
	m := TradingModel()
	c := m.Clone()
	ent, _ := c.Entity("client")
	ent.Attrs = append(ent.Attrs, Attribute{Name: "extra", Kind: value.KindInt})
	orig, _ := m.Entity("client")
	if _, ok := orig.Attr("extra"); ok {
		t.Error("Clone aliases original entities")
	}
}

func TestRender(t *testing.T) {
	out := TradingModel().Render()
	for _, want := range []string{
		"client", "company_stock", "trade",
		"*account_number", "*ticker_symbol",
		"[client] N--<trade>--N [company_stock]",
		"<trade>.quantity : int",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestParseElementRef(t *testing.T) {
	good := map[string]ElementRef{
		"client":           EntityRef("client"),
		"client.telephone": AttrRef("client", "telephone"),
		"trade()":          RelRef("trade"),
		"trade().quantity": RelAttrRef("trade", "quantity"),
	}
	for s, want := range good {
		got, err := ParseElementRef(s)
		if err != nil || got != want {
			t.Errorf("ParseElementRef(%q) = %v, %v; want %v", s, got, err, want)
		}
		// Roundtrip through String.
		back, err := ParseElementRef(got.String())
		if err != nil || back != got {
			t.Errorf("roundtrip %q failed: %v, %v", s, back, err)
		}
	}
	for _, s := range []string{"", "().x", ".a", "a.", "()", "r()x"} {
		if _, err := ParseElementRef(s); err == nil {
			t.Errorf("ParseElementRef(%q) should fail", s)
		}
	}
}
