// Package catalog ships the elicitation material the methodology consumes:
//
//   - the Figure 1 taxonomy (quality attribute = subjective quality
//     parameter ∪ objective quality indicator);
//   - the Appendix A candidate quality attribute list. The ICDE text refers
//     to the survey of several hundred data users reported in Wang &
//     Guarrascio, "Dimensions of Data Quality: Beyond Accuracy"
//     (CISL-91-06); the list here reproduces that survey's dimension
//     inventory, grouped, as elicitation stimulus — exactly the role
//     Appendix A plays in the paper;
//   - default operationalizations: for each common quality parameter, the
//     candidate indicators that can measure it (used by Step 3); and
//   - a relatedness graph between parameters (Premise 1.2: quality
//     attributes need not be orthogonal — e.g. timeliness and volatility).
package catalog

import (
	"sort"

	"repro/internal/value"
)

// AttrClass classifies a candidate quality attribute per Figure 1.
type AttrClass uint8

const (
	// Parameter marks a subjective, user-evaluated dimension.
	Parameter AttrClass = iota
	// Indicator marks an objective, measurable dimension of the data
	// manufacturing process.
	Indicator
)

// String renders the class name.
func (c AttrClass) String() string {
	if c == Parameter {
		return "parameter (subjective)"
	}
	return "indicator (objective)"
}

// Scope notes what the attribute applies to; §4 of the paper observes that
// some surveyed items describe the information system or service rather
// than the data itself.
type Scope uint8

// Scopes.
const (
	ScopeData Scope = iota
	ScopeSystem
	ScopeService
	ScopeUser
)

var scopeNames = [...]string{"data", "information system", "information service", "information user"}

// String renders the scope name.
func (s Scope) String() string { return scopeNames[s] }

// Candidate is one entry of the Appendix A candidate list.
type Candidate struct {
	// Name is the dimension name as surveyed.
	Name string
	// Group is the survey grouping.
	Group string
	// Class is the Figure 1 classification.
	Class AttrClass
	// Scope is what the dimension describes.
	Scope Scope
	// Doc is a one-line gloss.
	Doc string
}

// group definitions mirror the CISL-91-06 dimension groupings.
const (
	GroupAccuracy      = "accuracy"
	GroupTimeliness    = "timeliness"
	GroupCompleteness  = "completeness"
	GroupCredibility   = "credibility"
	GroupInterpretable = "interpretability"
	GroupAccessibility = "accessibility"
	GroupConsistency   = "consistency"
	GroupRelevance     = "relevance"
	GroupCost          = "cost"
	GroupManufacturing = "manufacturing process"
	GroupPresentation  = "presentation"
	GroupSecurity      = "security"
)

// Candidates returns the full candidate quality attribute list, in a
// deterministic order (group, then name).
func Candidates() []Candidate {
	out := append([]Candidate(nil), candidateList...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByName returns the named candidate.
func ByName(name string) (Candidate, bool) {
	for _, c := range candidateList {
		if c.Name == name {
			return c, true
		}
	}
	return Candidate{}, false
}

// Parameters returns only the subjective parameters from the list.
func Parameters() []Candidate {
	var out []Candidate
	for _, c := range Candidates() {
		if c.Class == Parameter {
			out = append(out, c)
		}
	}
	return out
}

// Indicators returns only the objective indicators from the list.
func Indicators() []Candidate {
	var out []Candidate
	for _, c := range Candidates() {
		if c.Class == Indicator {
			out = append(out, c)
		}
	}
	return out
}

var candidateList = []Candidate{
	// accuracy group
	{"accuracy", GroupAccuracy, Parameter, ScopeData, "data reflects real-world conditions"},
	{"precision", GroupAccuracy, Parameter, ScopeData, "granularity of measurement is adequate"},
	{"reliability", GroupAccuracy, Parameter, ScopeData, "data can be depended on"},
	{"correctness", GroupAccuracy, Parameter, ScopeData, "data is free of error"},
	{"validity", GroupAccuracy, Parameter, ScopeData, "data passes domain and edit checks"},
	{"error_rate", GroupAccuracy, Indicator, ScopeData, "measured defect fraction from inspection"},
	{"measurement_error", GroupAccuracy, Indicator, ScopeData, "instrument or estimate error bound"},
	{"rounding", GroupAccuracy, Indicator, ScopeData, "rounding applied when recorded"},

	// timeliness group
	{"timeliness", GroupTimeliness, Parameter, ScopeData, "data is current enough for the use"},
	{"currency", GroupTimeliness, Parameter, ScopeData, "how up-to-date data is"},
	{"volatility", GroupTimeliness, Parameter, ScopeData, "how quickly the real-world value changes"},
	{"age", GroupTimeliness, Indicator, ScopeData, "now minus creation time"},
	{"creation_time", GroupTimeliness, Indicator, ScopeData, "when the value was manufactured"},
	{"update_time", GroupTimeliness, Indicator, ScopeData, "when the value was last revised"},
	{"arrival_time", GroupTimeliness, Indicator, ScopeData, "when the value reached the database"},
	{"update_frequency", GroupTimeliness, Indicator, ScopeData, "refresh cadence of the feed"},

	// completeness group
	{"completeness", GroupCompleteness, Parameter, ScopeData, "no relevant facts are missing"},
	{"breadth", GroupCompleteness, Parameter, ScopeData, "coverage of the relevant population"},
	{"depth", GroupCompleteness, Parameter, ScopeData, "coverage of attributes per instance"},
	{"null_rate", GroupCompleteness, Indicator, ScopeData, "fraction of missing cells"},
	{"population_method", GroupCompleteness, Indicator, ScopeData, "how the table was populated"},
	{"record_count", GroupCompleteness, Indicator, ScopeData, "cardinality versus expected"},

	// credibility group
	{"credibility", GroupCredibility, Parameter, ScopeData, "data is believable for the use"},
	{"source_credibility", GroupCredibility, Parameter, ScopeData, "the origin is trusted"},
	{"objectivity", GroupCredibility, Parameter, ScopeData, "data is unbiased"},
	{"reputation", GroupCredibility, Parameter, ScopeData, "standing of the provider"},
	{"source", GroupCredibility, Indicator, ScopeData, "originating organization or feed"},
	{"analyst_name", GroupCredibility, Indicator, ScopeData, "author of a report or estimate"},
	{"collection_method", GroupCredibility, Indicator, ScopeData, "how the value was captured"},
	{"certification", GroupCredibility, Indicator, ScopeData, "inspection/certification record"},

	// interpretability group
	{"interpretability", GroupInterpretable, Parameter, ScopeData, "user can understand the data"},
	{"understandability", GroupInterpretable, Parameter, ScopeData, "meaning is clear in context"},
	{"definition_clarity", GroupInterpretable, Parameter, ScopeData, "attribute semantics are documented"},
	{"units", GroupInterpretable, Indicator, ScopeData, "unit of measure of the value"},
	{"currency_code", GroupInterpretable, Indicator, ScopeData, "monetary unit of the value"},
	{"language", GroupInterpretable, Indicator, ScopeData, "natural language of text"},
	{"media", GroupInterpretable, Indicator, ScopeData, "stored document format"},
	{"naming_convention", GroupInterpretable, Indicator, ScopeData, "identifier scheme in use"},

	// accessibility group
	{"accessibility", GroupAccessibility, Parameter, ScopeSystem, "data can be reached when needed"},
	{"availability", GroupAccessibility, Parameter, ScopeSystem, "system is up when queried"},
	{"retrieval_time", GroupAccessibility, Parameter, ScopeSystem, "queries return fast enough"},
	{"locatability", GroupAccessibility, Parameter, ScopeSystem, "data can be found"},
	{"access_path", GroupAccessibility, Indicator, ScopeSystem, "index or scan path available"},
	{"storage_location", GroupAccessibility, Indicator, ScopeSystem, "where the data resides"},

	// consistency group
	{"consistency", GroupConsistency, Parameter, ScopeData, "values agree across the database"},
	{"integrity", GroupConsistency, Parameter, ScopeData, "constraints hold"},
	{"referential_integrity", GroupConsistency, Parameter, ScopeData, "references resolve"},
	{"format_consistency", GroupConsistency, Parameter, ScopeData, "representation is uniform"},
	{"constraint_violations", GroupConsistency, Indicator, ScopeData, "count of failed edit checks"},

	// relevance group
	{"relevance", GroupRelevance, Parameter, ScopeUser, "data matters to the task"},
	{"importance", GroupRelevance, Parameter, ScopeUser, "weight of the data in decisions"},
	{"usefulness", GroupRelevance, Parameter, ScopeUser, "data contributes to outcomes"},
	{"content_fitness", GroupRelevance, Parameter, ScopeUser, "content fits the application"},
	{"past_experience", GroupRelevance, Parameter, ScopeUser, "user history with this data"},

	// cost group
	{"cost", GroupCost, Parameter, ScopeService, "price of obtaining the data"},
	{"value_added", GroupCost, Parameter, ScopeService, "net benefit of the data"},
	{"price", GroupCost, Indicator, ScopeService, "monetary price paid"},
	{"opportunity_cost", GroupCost, Indicator, ScopeService, "competitive value foregone"},

	// manufacturing process group
	{"traceability", GroupManufacturing, Parameter, ScopeData, "production history can be followed"},
	{"auditability", GroupManufacturing, Parameter, ScopeData, "an electronic trail exists"},
	{"entered_by", GroupManufacturing, Indicator, ScopeData, "who recorded the value"},
	{"entry_method", GroupManufacturing, Indicator, ScopeData, "device or process used to record"},
	{"entry_time", GroupManufacturing, Indicator, ScopeData, "when the value was recorded"},
	{"process_step", GroupManufacturing, Indicator, ScopeData, "manufacturing step that produced it"},
	{"inspection", GroupManufacturing, Indicator, ScopeData, "inspection requirement marker (the paper's ✓)"},

	// presentation group
	{"presentation_quality", GroupPresentation, Parameter, ScopeSystem, "output is well presented"},
	{"resolution_of_graphics", GroupPresentation, Parameter, ScopeSystem, "graphics render adequately"},
	{"format_flexibility", GroupPresentation, Parameter, ScopeSystem, "output adapts to needs"},

	// security group
	{"security", GroupSecurity, Parameter, ScopeSystem, "data is protected"},
	{"access_control", GroupSecurity, Indicator, ScopeSystem, "who may read or write"},
	{"clear_responsibility", GroupSecurity, Parameter, ScopeService, "data stewardship is assigned"},
}

// IndicatorSpec describes a concrete indicator suggestion: its name and the
// value kind a tag carrying it should have.
type IndicatorSpec struct {
	Name string
	Kind value.Kind
	Doc  string
}

// Operationalizations maps a quality parameter name to the candidate
// indicators that commonly operationalize it — the Step 3 suggestion table.
// (The paper's example: timeliness → age; credibility → analyst name;
// accuracy of telephone → collection method; interpretability of report →
// media.)
func Operationalizations(parameter string) []IndicatorSpec {
	specs, ok := operationalizations[parameter]
	if !ok {
		return nil
	}
	return append([]IndicatorSpec(nil), specs...)
}

var operationalizations = map[string][]IndicatorSpec{
	"timeliness": {
		{Name: "age", Kind: value.KindDuration, Doc: "now - creation_time"},
		{Name: "creation_time", Kind: value.KindTime, Doc: "when the value was manufactured"},
		{Name: "update_time", Kind: value.KindTime, Doc: "last revision"},
	},
	"currency": {
		{Name: "creation_time", Kind: value.KindTime, Doc: "when the value was manufactured"},
		{Name: "update_frequency", Kind: value.KindDuration, Doc: "refresh cadence"},
	},
	"volatility": {
		{Name: "update_frequency", Kind: value.KindDuration, Doc: "refresh cadence"},
	},
	"credibility": {
		{Name: "source", Kind: value.KindString, Doc: "originating organization"},
		{Name: "analyst_name", Kind: value.KindString, Doc: "author of report"},
		{Name: "collection_method", Kind: value.KindString, Doc: "capture mechanism"},
	},
	"source_credibility": {
		{Name: "source", Kind: value.KindString, Doc: "originating organization"},
	},
	"accuracy": {
		{Name: "collection_method", Kind: value.KindString, Doc: "capture mechanism with known error rate"},
		{Name: "error_rate", Kind: value.KindFloat, Doc: "inspected defect fraction"},
		{Name: "entered_by", Kind: value.KindString, Doc: "who recorded the value"},
	},
	"completeness": {
		{Name: "population_method", Kind: value.KindString, Doc: "how the table was populated"},
		{Name: "null_rate", Kind: value.KindFloat, Doc: "fraction of missing cells"},
	},
	"interpretability": {
		{Name: "media", Kind: value.KindString, Doc: "document format (bitmap, ascii, postscript)"},
		{Name: "units", Kind: value.KindString, Doc: "unit of measure"},
		{Name: "language", Kind: value.KindString, Doc: "natural language"},
		{Name: "company_name", Kind: value.KindString, Doc: "readable name behind an identifier"},
	},
	"cost": {
		{Name: "price", Kind: value.KindFloat, Doc: "monetary price"},
		{Name: "age", Kind: value.KindDuration, Doc: "opportunity cost proxy for a trader"},
	},
	"traceability": {
		{Name: "entered_by", Kind: value.KindString, Doc: "who recorded the value"},
		{Name: "entry_time", Kind: value.KindTime, Doc: "when recorded"},
		{Name: "process_step", Kind: value.KindString, Doc: "manufacturing step"},
	},
	"inspection": {
		{Name: "inspection", Kind: value.KindString, Doc: "inspection mechanism to apply"},
		{Name: "certification", Kind: value.KindString, Doc: "certification record"},
	},
}

// Related returns the parameters related to the given one (Premise 1.2,
// non-orthogonality). The relation is symmetric.
func Related(parameter string) []string {
	set := map[string]bool{}
	for _, pair := range relatedPairs {
		if pair[0] == parameter {
			set[pair[1]] = true
		}
		if pair[1] == parameter {
			set[pair[0]] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

var relatedPairs = [][2]string{
	{"timeliness", "volatility"},
	{"timeliness", "currency"},
	{"accuracy", "reliability"},
	{"accuracy", "validity"},
	{"credibility", "source_credibility"},
	{"credibility", "reputation"},
	{"completeness", "breadth"},
	{"completeness", "depth"},
	{"interpretability", "understandability"},
	{"consistency", "integrity"},
	{"cost", "value_added"},
	{"traceability", "auditability"},
}

// Taxonomy renders the Figure 1 diagram: the quality attribute concept
// splitting into subjective parameters and objective indicators.
func Taxonomy() string {
	return `                 +--------------------+
                 |  quality attribute |
                 +--------------------+
                   /                \
                  /                  \
   +---------------------+   +---------------------+
   |  quality parameter  |   |  quality indicator  |
   |    (subjective)     |   |     (objective)     |
   +---------------------+   +---------------------+
   user-evaluated dimension  measured characteristic
   e.g. timeliness,          e.g. source, creation
   credibility               time, collection method
`
}
