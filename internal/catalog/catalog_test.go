package catalog

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/value"
)

func TestCandidatesDeterministicAndGrouped(t *testing.T) {
	a, b := Candidates(), Candidates()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("candidate counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidates not deterministic at %d", i)
		}
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool {
		if a[i].Group != a[j].Group {
			return a[i].Group < a[j].Group
		}
		return a[i].Name < a[j].Name
	}) {
		t.Error("candidates not sorted by group,name")
	}
	// No duplicate names.
	seen := map[string]bool{}
	for _, c := range a {
		if seen[c.Name] {
			t.Errorf("duplicate candidate %q", c.Name)
		}
		seen[c.Name] = true
		if c.Doc == "" {
			t.Errorf("candidate %q missing doc", c.Name)
		}
	}
}

func TestPaperDimensionsPresent(t *testing.T) {
	// §4: "Certain characteristics seem universally important such as
	// completeness, timeliness, accuracy, and interpretability."
	for _, name := range []string{"completeness", "timeliness", "accuracy", "interpretability", "credibility", "cost", "volatility"} {
		c, ok := ByName(name)
		if !ok {
			t.Errorf("missing dimension %q", name)
			continue
		}
		if c.Class != Parameter {
			t.Errorf("%q should be a subjective parameter", name)
		}
	}
	// The paper's canonical indicators.
	for _, name := range []string{"source", "creation_time", "collection_method", "age", "analyst_name", "media"} {
		c, ok := ByName(name)
		if !ok {
			t.Errorf("missing indicator %q", name)
			continue
		}
		if c.Class != Indicator {
			t.Errorf("%q should be an objective indicator", name)
		}
	}
	// §4: some items apply to the system/service/user, not the data.
	if c, _ := ByName("resolution_of_graphics"); c.Scope != ScopeSystem {
		t.Error("resolution_of_graphics should be system-scoped")
	}
	if c, _ := ByName("clear_responsibility"); c.Scope != ScopeService {
		t.Error("clear_responsibility should be service-scoped")
	}
	if c, _ := ByName("past_experience"); c.Scope != ScopeUser {
		t.Error("past_experience should be user-scoped")
	}
}

func TestParametersIndicatorsPartition(t *testing.T) {
	all := Candidates()
	p, i := Parameters(), Indicators()
	if len(p)+len(i) != len(all) {
		t.Errorf("partition broken: %d + %d != %d", len(p), len(i), len(all))
	}
	for _, c := range p {
		if c.Class != Parameter {
			t.Errorf("Parameters() returned indicator %q", c.Name)
		}
	}
	for _, c := range i {
		if c.Class != Indicator {
			t.Errorf("Indicators() returned parameter %q", c.Name)
		}
	}
}

func TestByNameMiss(t *testing.T) {
	if _, ok := ByName("sparkle_factor"); ok {
		t.Error("ByName should miss unknown names")
	}
}

func TestOperationalizations(t *testing.T) {
	specs := Operationalizations("timeliness")
	if len(specs) == 0 {
		t.Fatal("timeliness should have operationalizations")
	}
	found := false
	for _, s := range specs {
		if s.Name == "age" && s.Kind == value.KindDuration {
			found = true
		}
	}
	if !found {
		t.Errorf("timeliness should suggest age: %v", specs)
	}
	// Returned slice is a copy.
	specs[0].Name = "mutated"
	if Operationalizations("timeliness")[0].Name == "mutated" {
		t.Error("Operationalizations aliases internal state")
	}
	if got := Operationalizations("sparkle_factor"); got != nil {
		t.Errorf("unknown parameter should suggest nothing, got %v", got)
	}
	// Every suggested indicator name that exists in the candidate list is
	// classified as an indicator.
	for param, specs := range map[string][]IndicatorSpec{
		"credibility": Operationalizations("credibility"),
		"accuracy":    Operationalizations("accuracy"),
	} {
		for _, s := range specs {
			if c, ok := ByName(s.Name); ok && c.Class != Indicator {
				t.Errorf("%s suggests %q which is not an indicator", param, s.Name)
			}
		}
	}
}

func TestRelatedSymmetric(t *testing.T) {
	if got := Related("timeliness"); len(got) == 0 {
		t.Fatal("timeliness should relate to volatility")
	}
	for _, p := range Related("timeliness") {
		back := Related(p)
		found := false
		for _, q := range back {
			if q == "timeliness" {
				found = true
			}
		}
		if !found {
			t.Errorf("relatedness not symmetric for timeliness <-> %s", p)
		}
	}
	if got := Related("sparkle_factor"); len(got) != 0 {
		t.Errorf("unknown parameter related = %v", got)
	}
}

func TestTaxonomyMentionsFigure1Concepts(t *testing.T) {
	tx := Taxonomy()
	for _, want := range []string{"quality attribute", "quality parameter", "quality indicator", "subjective", "objective"} {
		if !strings.Contains(tx, want) {
			t.Errorf("taxonomy missing %q", want)
		}
	}
}
