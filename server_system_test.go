// End-to-end test of the server access path through the public facade:
// NewDatabase -> NewServer -> Dial -> query over the wire, with the same
// quality-filtering semantics as the embedded path.
package repro_test

import (
	"context"
	"testing"
	"time"

	"repro"
)

func TestServerAccessPathThroughFacade(t *testing.T) {
	now := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	// DefaultPlanCacheSize is the explicit "default" sentinel;
	// WithPlanCache(0) attaches a disabled cache.
	db := repro.NewDatabase().At(now).WithPlanCache(repro.DefaultPlanCacheSize)
	db.Session.MustExec(`CREATE TABLE customer (
		co_name string REQUIRED,
		employees int QUALITY (creation_time time, source string)
	) KEY (co_name) STRICT`)
	db.Session.MustExec(`INSERT INTO customer VALUES
		('Fruit Co', 4004 @ {creation_time: t'1991-10-03T00:00:00Z', source: 'Nexis'}),
		('Nut Co', 700 @ {creation_time: t'1991-10-09T00:00:00Z', source: 'estimate'})`)

	srv := repro.NewServer(db, repro.ServerConfig{Addr: "127.0.0.1:0", Now: now})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	c, err := repro.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The wire result matches the embedded result.
	embedded, err := db.Session.Query(`SELECT co_name FROM customer
		WITH QUALITY employees@source != 'estimate'`)
	if err != nil {
		t.Fatal(err)
	}
	_, rows, err := c.Query(`SELECT co_name FROM customer
		WITH QUALITY employees@source != 'estimate'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != embedded.Len() || len(rows) != 1 {
		t.Fatalf("wire %d rows, embedded %d rows, want 1", len(rows), embedded.Len())
	}
	if rows[0][0] != embedded.Tuples[0].Cells[0].V.Literal() {
		t.Errorf("wire %q != embedded %q", rows[0][0], embedded.Tuples[0].Cells[0].V.Literal())
	}

	// Writes over the wire land in the shared catalog.
	if _, err := c.Exec(`INSERT INTO customer VALUES
		('Seed Co', 12 @ {creation_time: t'1991-12-01T00:00:00Z', source: 'sales'})`); err != nil {
		t.Fatal(err)
	}
	rel, err := db.Session.Query(`SELECT COUNT(*) AS n FROM customer`)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0].Cells[0].V.AsInt() != 3 {
		t.Errorf("embedded session sees %v rows, want 3", rel.Tuples[0].Cells[0].V)
	}

	// The batch API ships several statements in one frame with
	// per-statement results, and a legacy v1 client shares the catalog.
	resps, err := c.ExecBatch([]string{
		`INSERT INTO customer VALUES ('Batch Co', 9 @ {creation_time: t'1991-12-02T00:00:00Z', source: 'sales'})`,
		`SELECT COUNT(*) AS n FROM customer`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 || resps[0].Err != "" || resps[1].Rows[0][0] != "4" {
		t.Fatalf("batch resps = %+v", resps)
	}
	legacy, err := repro.DialOptions(srv.Addr().String(), repro.ClientOptions{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if n, err := legacy.QueryInt(`SELECT COUNT(*) AS n FROM customer`); err != nil || n != 4 {
		t.Errorf("legacy client count = %d, %v, want 4", n, err)
	}
}
