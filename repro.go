// Package repro is a from-scratch Go implementation of the system described
// in "Data Quality Requirements Analysis and Modeling" (Wang, Kon & Madnick,
// ICDE 1993): the four-step data quality modeling methodology, the
// attribute-based cell-tagging data model and polygen source tagging it
// relies on, a quality-extended query language (QQL) with query-time
// filtering over quality indicators, and the data quality administrator's
// toolkit (profiles, grading, edit checks, SPC, certification, audit trail).
//
// This file is the public facade: it re-exports the handful of entry points
// a downstream user needs, while the full surface lives in the internal
// packages (internal/core is the methodology, internal/qql the query
// language, internal/storage the engine).
//
// Quick start:
//
//	db := repro.NewDatabase()
//	db.Session.MustExec(`CREATE TABLE customer (
//	    co_name string REQUIRED,
//	    employees int QUALITY (creation_time time, source string)
//	) KEY (co_name) STRICT`)
//	db.Session.MustExec(`INSERT INTO customer VALUES
//	    ('Fruit Co', 4004 @ {creation_time: t'1991-10-03', source: 'Nexis'})`)
//	rel, err := db.Session.Query(`SELECT co_name FROM customer
//	    WITH QUALITY employees@source != 'estimate'`)
//
// And the methodology:
//
//	pipeline, _ := repro.TradingPipeline() // the paper's Figures 3-5
//	result, _ := pipeline.Run()
//	fmt.Println(result.Document())
//
// Two access paths share the same engine. The embedded path above links the
// store into your process; the server path puts it behind qqld, a TCP
// daemon speaking the framed wire v2 protocol (pipelined request IDs, JSON
// or binary payloads; legacy v1 line-JSON clients are auto-detected), with
// one qql.Session per connection over a shared catalog and a shared
// prepared-plan cache:
//
//	db := repro.NewDatabase()
//	srv := repro.NewServer(db, repro.ServerConfig{Addr: "127.0.0.1:0"})
//	_ = srv.Listen()
//	go srv.Serve()
//
//	c, _ := repro.Dial(srv.Addr().String())
//	c.Exec(`CREATE TABLE t (a int)`)
//	cols, rows, _ := c.Query(`SELECT * FROM t`)
//	resps, _ := c.ExecBatch([]string{...})  // one frame, per-statement results
//
// See README.md for the wire protocol and the qqld daemon (cmd/qqld).
package repro

import (
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/er"
	"repro/internal/qql"
	"repro/internal/quality"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
	"repro/internal/storage"
	"repro/internal/storage/wal"
	"repro/internal/tag"
	"repro/internal/value"
)

// Database bundles a storage catalog with a QQL session over it. With
// WithDurability the catalog is recovered from — and every mutation
// write-ahead logged to — an on-disk directory.
type Database struct {
	Catalog *storage.Catalog
	Session *qql.Session
	// WAL is the write-ahead log attached by WithDurability; nil for a
	// purely in-memory database.
	WAL *WAL
}

// WAL is a durable write-ahead log with group commit, snapshot
// checkpoints and crash recovery (internal/storage/wal).
type WAL = wal.Log

// Fsync modes for WithDurability (and qqld -fsync).
const (
	// FsyncGroup coalesces concurrent commits into one fsync (default).
	FsyncGroup = "group"
	// FsyncAlways issues one fsync per commit.
	FsyncAlways = "always"
	// FsyncOff never fsyncs; a crash may lose acknowledged writes.
	FsyncOff = "off"
)

// NewDatabase creates an empty in-memory database with a fresh session.
func NewDatabase() *Database {
	cat := storage.NewCatalog()
	return &Database{Catalog: cat, Session: qql.NewSession(cat)}
}

// At pins the session clock (NOW(), AGE()) and returns the database for
// chaining; use it for reproducible runs. Without it the clock is
// re-sampled from the wall clock at every statement.
func (d *Database) At(now time.Time) *Database {
	d.Session.SetNow(now)
	return d
}

// WithDurability makes the database durable: it opens (recovering if the
// directory already holds a log) a write-ahead log in dir, swaps in the
// recovered catalog, and rebuilds the session so every mutation is
// logged and committed per fsync ("group", "always" or "off"; see the
// Fsync constants) before Exec returns. Call Close when done.
func (d *Database) WithDurability(dir, fsync string) (*Database, error) {
	mode, err := wal.ParseFsyncMode(fsync)
	if err != nil {
		return nil, err
	}
	l, err := wal.Open(dir, wal.Options{Fsync: mode})
	if err != nil {
		return nil, err
	}
	d.WAL = l
	d.Catalog = l.Catalog()
	d.Session = qql.NewSession(d.Catalog)
	d.Session.SetDurability(l)
	return d, nil
}

// Close flushes and closes the write-ahead log, if any. The database
// remains queryable in memory afterwards, but mutations will fail.
func (d *Database) Close() error {
	if d.WAL == nil {
		return nil
	}
	return d.WAL.Close()
}

// DefaultPlanCacheSize is the conventional per-tier plan cache entry cap;
// pass it to WithPlanCache (or ServerConfig.CacheSize) for "the default".
const DefaultPlanCacheSize = qql.DefaultCacheSize

// WithPlanCache attaches a fresh two-tier plan cache of n entries per tier
// (pass DefaultPlanCacheSize for the conventional default; n <= 0 attaches
// a disabled cache) to the embedded session and returns the database for
// chaining. Server sessions get a shared cache automatically.
func (d *Database) WithPlanCache(n int) *Database {
	d.Session.SetPlanCache(qql.NewPlanCache(n))
	return d
}

// WithParallelism sets the scan fan-out degree for large unindexed table
// scans (n <= 0 restores the default of one worker per core, 1 forces
// serial scans) and returns the database for chaining.
func (d *Database) WithParallelism(n int) *Database {
	d.Session.SetParallelism(n)
	return d
}

// WithVectorized toggles the batch-at-a-time execution tier (on by
// default) and returns the database for chaining. Both tiers produce
// identical results; off forces row-at-a-time Volcano execution, mostly
// useful for measurement.
func (d *Database) WithVectorized(on bool) *Database {
	d.Session.SetVectorized(on)
	return d
}

// Serving types (internal/server): qqld as a library.
type (
	// Server serves QQL over TCP with per-connection sessions, a shared
	// catalog and a shared plan cache.
	Server = server.Server
	// ServerConfig tunes addr, connection cap, cache size, clock, per-conn
	// pipeline depth (MaxInFlight), response size cap (MaxResultBytes) and
	// response encoding.
	ServerConfig = server.Config
	// ServerStats snapshots the server counters.
	ServerStats = server.Stats
	// Client is a reusable, pipelined client connection to a qqld server;
	// Do/Query/Exec are synchronous, DoAsync/ExecBatch expose the
	// pipeline.
	Client = client.Client
	// ClientOptions selects the client's protocol version (2 framed /
	// pipelined, 1 legacy line JSON), payload encoding and pipeline depth.
	ClientOptions = client.Options
	// ClientPending is an in-flight pipelined request; Wait blocks for its
	// response.
	ClientPending = client.Pending
	// WireResponse is one per-statement server response (used by
	// Client.Do and Client.ExecBatch results).
	WireResponse = wire.Response
	// PlanCache memoizes query compilation across sessions in two tiers:
	// parsed statements, and schema-versioned bound single-SELECT plans
	// invalidated by DDL.
	PlanCache = qql.PlanCache
)

// Wire v2 payload encodings, for ClientOptions.Encoding (and, with
// "auto", ServerConfig.Encoding).
const (
	// WireEncodingJSON carries JSON payloads inside v2 frames.
	WireEncodingJSON = "json"
	// WireEncodingBinary carries the compact typed-cell codec (default).
	WireEncodingBinary = "binary"
)

// NewServer creates a qqld server over the database's catalog; start it
// with Listen + Serve and stop it with Shutdown.
func NewServer(d *Database, cfg ServerConfig) *Server { return server.New(d.Catalog, cfg) }

// Dial connects to a qqld server at addr ("host:port") with the default
// options: wire v2, binary encoding, pipelined.
func Dial(addr string) (*Client, error) { return client.Dial(addr) }

// DialOptions connects with explicit protocol options — e.g.
// ClientOptions{Version: 1} for the legacy line-JSON protocol, or
// ClientOptions{MaxInFlight: 64} to deepen the pipeline.
func DialOptions(addr string, o ClientOptions) (*Client, error) { return client.DialOptions(addr, o) }

// Core methodology types (internal/core).
type (
	// Pipeline runs the paper's Steps 2-4 plus compilation.
	Pipeline = core.Pipeline
	// PipelineResult bundles all methodology documents.
	PipelineResult = core.PipelineResult
	// ParameterView is the Step 2 output (Figure 4).
	ParameterView = core.ParameterView
	// QualityView is the Step 3 output (Figure 5).
	QualityView = core.QualityView
	// QualitySchema is the Step 4 output.
	QualitySchema = core.QualitySchema
	// Integrator performs Step 4 view integration.
	Integrator = core.Integrator
)

// ER modeling types (internal/er, methodology Step 1).
type (
	// Model is an ER application view.
	Model = er.Model
	// Entity is an ER entity type.
	Entity = er.Entity
	// Relationship is a binary ER relationship.
	Relationship = er.Relationship
)

// Quality requirement types (internal/quality).
type (
	// Profile is one user's quality requirements (Premises 2.1/2.2).
	Profile = quality.Profile
	// Evaluator filters relations through profiles.
	Evaluator = quality.Evaluator
)

// Data model types.
type (
	// Relation is a bag of tagged tuples over a schema.
	Relation = relation.Relation
	// Tuple is a row of tagged cells.
	Tuple = relation.Tuple
	// Cell is one value with quality tags and polygen sources.
	Cell = relation.Cell
	// Value is a typed scalar.
	Value = value.Value
	// TagSet is a set of quality indicator values on a cell.
	TagSet = tag.Set
	// Sources is a polygen source set.
	Sources = tag.Sources
)

// TradingModel returns the paper's Figure 3 application view.
func TradingModel() *Model { return er.TradingModel() }

// TradingPipeline returns the full methodology run for the paper's trading
// application (Figures 3-5 plus the §3.4 integration example).
func TradingPipeline() (*Pipeline, error) { return core.TradingPipeline() }

// StandardRegistry returns the built-in parameter derivation functions
// (credibility by source, timeliness by age, accuracy by collection method,
// interpretability by media) and the canonical derivability facts.
func StandardRegistry() *derive.Registry { return derive.StandardRegistry() }

// Collect drains a query iterator into a relation; exposed for users
// composing algebra operators directly.
func Collect(it algebra.Iterator) (*Relation, error) { return algebra.Collect(it) }
