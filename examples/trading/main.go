// Trading: the paper's running example end to end. Step 1 builds the
// Figure 3 application view; Steps 2-4 produce the Figure 4 parameter view,
// the Figure 5 quality view, and the integrated quality schema (with the
// §3.4 age/creation_time subsumption); the compiled schemas are then loaded
// with synthetic market data and queried with quality requirements.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	// Steps 1-4 (Figure 2 pipeline).
	pipeline, err := repro.TradingPipeline()
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipeline.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Document())

	// Apply the structural refinement the integrator suggested
	// (Premise 1.1: company_name becomes an application attribute).
	if len(res.QualitySchema.PromoteSuggestions) > 0 {
		s := res.QualitySchema.PromoteSuggestions[0]
		if err := res.QualitySchema.Promote(s); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Applied refinement: %s is now an attribute of %s\n\n", s.Indicator, s.Element.Owner)
	}

	// Load the compiled schemas with generated market data and query.
	db := repro.NewDatabase().At(workload.Epoch)
	data := workload.Trading(workload.TradingConfig{Clients: 25, Stocks: 10, Trades: 400, Seed: 7})
	for name, rel := range map[string]*relation.Relation{
		"client": data.Clients, "company_stock": data.Stocks, "trade": data.Trades,
	} {
		tbl, err := db.Catalog.Create(rel.Schema, false)
		if err != nil {
			log.Fatal(err)
		}
		if err := tbl.Load(rel); err != nil {
			log.Fatalf("loading %s: %v", name, err)
		}
	}
	// Index the quality indicator the trader filters by most.
	tbl, _ := db.Catalog.Get("company_stock")
	if err := tbl.CreateIndex(storage.IndexTarget{Attr: "share_price", Indicator: "creation_time"}, storage.IndexBTree); err != nil {
		log.Fatal(err)
	}

	// The loose investor: any quote within 3 days is fine (Premise 2.2).
	loose, err := db.Session.Query(`
SELECT ticker_symbol, share_price FROM company_stock
WITH QUALITY AGE(share_price@creation_time) <= d'72h'
ORDER BY ticker_symbol`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Loose investor (quotes <= 72h old): %d of %d stocks usable\n",
		loose.Len(), data.Stocks.Len())

	// The real-time trader: ten minutes is not timely enough at 24h.
	strict, err := db.Session.Query(`
SELECT ticker_symbol, share_price FROM company_stock
WITH QUALITY AGE(share_price@creation_time) <= d'24h'
ORDER BY ticker_symbol`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Strict trader  (quotes <= 24h old): %d of %d stocks usable\n",
		strict.Len(), data.Stocks.Len())

	// Joins carry tags: positions valued only from credible feeds.
	positions, err := db.Session.Query(`
SELECT t.company_stock_ticker_symbol, SUM(quantity) AS total_qty
FROM trade t JOIN company_stock s ON t.company_stock_ticker_symbol = s.ticker_symbol
WITH QUALITY s.share_price@source != 'telerate'
GROUP BY t.company_stock_ticker_symbol
ORDER BY total_qty DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTop positions excluding telerate-sourced quotes:")
	fmt.Println(relation.Format(positions, false))

	// EXPLAIN shows the indicator index being used.
	out := db.Session.MustExec(`EXPLAIN SELECT ticker_symbol FROM company_stock
WITH QUALITY share_price@creation_time >= t'1991-12-31'`)
	fmt.Println("Plan for the quality-indexed query:")
	fmt.Println(out[0].Plan)
}
