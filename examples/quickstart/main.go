// Quickstart: the paper's Tables 1 and 2 in sixty lines — create a
// quality-tagged table, load the customer data with cell-level tags, and
// filter at query time by quality indicators.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/relation"
)

func main() {
	db := repro.NewDatabase().At(time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC))

	db.Session.MustExec(`
CREATE TABLE customer (
  co_name string REQUIRED,
  address string QUALITY (creation_time time, source string),
  employees int QUALITY (creation_time time, source string)
) KEY (co_name) STRICT;

INSERT INTO customer VALUES (
  'Fruit Co',
  '12 Jay St' @ {creation_time: t'1991-01-02', source: 'sales'},
  4004 @ {creation_time: t'1991-10-03', source: 'Nexis'}
);
INSERT INTO customer VALUES (
  'Nut Co',
  '62 Lois Av' @ {creation_time: t'1991-10-24', source: 'acct''g'},
  700 @ {creation_time: t'1991-10-09', source: 'estimate'}
);`)

	// Table 1: the application data alone.
	all, err := db.Session.Query(`SELECT * FROM customer ORDER BY co_name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1: customer information")
	fmt.Println(relation.Format(all, false))

	// Table 2: the same data with its quality tags.
	fmt.Println("Table 2: customer information with quality tags")
	fmt.Println(relation.Format(all, true))

	// Query-time filtering over quality indicators (§1.2): drop
	// estimates, demand addresses younger than 90 days.
	fresh, err := db.Session.Query(`
SELECT co_name, address, employees FROM customer
WITH QUALITY employees@source != 'estimate'
          AND AGE(address@creation_time) <= d'8760h'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Rows passing the quality requirements (no estimates, addresses < 1 year):")
	fmt.Println(relation.Format(fresh, true))
}
