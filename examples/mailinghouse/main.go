// Mailinghouse: the paper's §4 information clearing house for addresses.
// One address database serves applications with different quality
// standards: mass mailings query with no quality constraints, fund raising
// constrains indicator values, and the house grades its inventory into
// quality classes.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/derive"
	"repro/internal/quality"
	"repro/internal/value"
	"repro/internal/workload"
)

func main() {
	rel := workload.Addresses(workload.AddressConfig{
		N: 20000, Seed: 42, FreshFraction: 0.4, VerifiedFraction: 0.35,
	})
	ev := &repro.Evaluator{Registry: repro.StandardRegistry(), Now: workload.Epoch}

	// Premise 2.1/2.2: two applications, two standards.
	mass := &repro.Profile{Name: "mass_mailing",
		Doc: "no need to reach the correct individual; no quality constraints"}
	fund := &repro.Profile{Name: "fund_raising",
		Doc: "sensitive application; constrain indicator values",
		Constraints: []quality.IndicatorConstraint{
			{Attr: "address", Indicator: "source", Op: quality.OpEq, Bound: value.Str("registry")},
			{Attr: "address", Indicator: "creation_time", Op: quality.OpLe,
				Bound: value.Duration(90 * 24 * time.Hour), AgeOf: true},
		},
		Requirements: []quality.ParameterRequirement{
			{Attr: "address", Parameter: "accuracy", Min: derive.High},
		}}

	for _, p := range []*repro.Profile{mass, fund} {
		_, rep, err := ev.Filter(rel, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep.String())
		fmt.Println()
	}

	// Grade the whole inventory into classes A/B/C.
	classes := []quality.GradeClass{
		{Name: "A (fund raising)", Profile: fund},
		{Name: "B (targeted mail)", Profile: &repro.Profile{
			Constraints: []quality.IndicatorConstraint{
				{Attr: "address", Indicator: "creation_time", Op: quality.OpLe,
					Bound: value.Duration(365 * 24 * time.Hour), AgeOf: true},
			}}},
		{Name: "C (mass mailing)", Profile: mass},
	}
	_, counts, err := ev.Classify(rel, classes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Inventory by quality class:")
	for _, cl := range classes {
		fmt.Printf("  %-18s %6d addresses (%.1f%%)\n", cl.Name, counts[cl.Name],
			100*float64(counts[cl.Name])/float64(rel.Len()))
	}
}
