// Auditor: the data quality administrator's perspective (§4). An erred
// quote enters the database, flows into derived positions and statements,
// and the administrator (1) traces it through the electronic trail,
// (2) scopes the contamination, (3) watches the entry process on a p chart
// that catches the defect burst, and (4) certifies the corrected data.
package main

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/inspect"
	"repro/internal/workload"
)

func main() {
	now := workload.Epoch
	trail := audit.NewTrail()
	quote := audit.CellRef{Table: "company_stock", Key: "IBM", Attr: "share_price"}
	position := audit.CellRef{Table: "portfolio", Key: "acct_1001", Attr: "position_value"}
	statement := audit.CellRef{Table: "statements", Key: "acct_1001", Attr: "total"}

	// The manufacturing process, as it happened.
	trail.Record(audit.Step{Kind: audit.StepCollect, Actor: "telerate_feed",
		At: now.Add(-30 * time.Hour), Outputs: []audit.CellRef{quote},
		Note: "quote 98.5 collected"})
	trail.Record(audit.Step{Kind: audit.StepEnter, Actor: "teller_2",
		At: now.Add(-29 * time.Hour), Outputs: []audit.CellRef{quote},
		Note: "manual re-key: 985.0 (slipped decimal — the erred transaction)"})
	trail.Record(audit.Step{Kind: audit.StepTransform, Actor: "eod_batch",
		At: now.Add(-20 * time.Hour), Inputs: []audit.CellRef{quote},
		Outputs: []audit.CellRef{position}})
	trail.Record(audit.Step{Kind: audit.StepTransform, Actor: "statement_run",
		At: now.Add(-10 * time.Hour), Inputs: []audit.CellRef{position},
		Outputs: []audit.CellRef{statement}})
	trail.Record(audit.Step{Kind: audit.StepCorrect, Actor: "dq_admin",
		At: now, Inputs: []audit.CellRef{quote}, Outputs: []audit.CellRef{quote},
		Note: "corrected to 98.5 after client complaint"})

	// (1) + (2): the electronic trail for the suspect cell.
	fmt.Println(trail.Report(quote))

	// (3): the entry process on a p chart. Daily samples of 500 entries;
	// day 6 is the day teller_2's workstation dropped decimals.
	fmt.Println("Entry-error p chart (500 entries/day, calibrated at 1% defects):")
	chart, err := inspect.NewPChart(0.01, 500)
	if err != nil {
		panic(err)
	}
	ins := &inspect.Inspector{Rules: []inspect.Rule{
		inspect.NotNull{Attr: "address"},
		inspect.NotNull{Attr: "employees"},
	}}
	base := workload.Customers(workload.CustomerConfig{N: 500, Seed: 100})
	for day := 0; day < 10; day++ {
		rate := 0.005
		if day == 6 {
			rate = 0.08 // the burst
		}
		batch, _ := workload.InjectErrors(base, workload.ErrorConfig{Seed: int64(day), NullRate: rate})
		res := ins.InspectRelation(batch)
		p, err := chart.AddSample(res.Defective)
		if err != nil {
			panic(err)
		}
		flag := ""
		if p.OutOfControl {
			flag = "  <-- OUT OF CONTROL (" + p.Rule + ")"
		}
		fmt.Printf("  day %2d: defects %3d (p=%.4f)%s\n", day+1, res.Defective, p.Value, flag)
	}

	// (4): certification of the corrected cell, with an expiry that the
	// periodic inspection scheduler will surface.
	certs := inspect.NewCertRegistry()
	certs.Add(inspect.Certificate{
		Subject: quote.String(), CertifiedBy: "dq_admin",
		At: now, Expires: now.Add(30 * 24 * time.Hour),
		Note: "verified against exchange close",
	})
	fmt.Printf("\n%s certified: %v\n", quote, certs.Valid(quote.String(), now))
	fmt.Printf("subjects needing re-inspection within 45 days: %v\n",
		certs.Expiring(now, 45*24*time.Hour))

	// (5): the inspection scheduler — periodic prompts, certificate-expiry
	// prompts, and a peculiar-data trigger on incoming batches (§4:
	// "prompting for data inspection on a periodic basis or in the event
	// of peculiar data").
	sched := inspect.NewScheduler(inspect.SchedulerConfig{
		Period:       7 * 24 * time.Hour,
		CertHorizon:  45 * 24 * time.Hour,
		Certs:        certs,
		PeculiarRate: 0.05,
		Rules: []inspect.Rule{
			inspect.NotNull{Attr: "address"},
			inspect.NotNull{Attr: "employees"},
		},
	})
	sched.Track("customer", now)
	fmt.Println("\nScheduler, one week later:")
	for _, p := range sched.Tick(now.Add(8 * 24 * time.Hour)) {
		fmt.Println("  " + p.String())
	}
	peculiar, _ := workload.InjectErrors(base, workload.ErrorConfig{Seed: 99, NullRate: 0.15})
	if _, p := sched.Observe("customer", peculiar, now.Add(9*24*time.Hour)); p != nil {
		fmt.Println("  " + p.String())
	}
}
