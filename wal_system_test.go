// System test of the durability path against the real qqld binary: boot
// with -data, ingest over wire v2 batches, kill -9 the process, restart
// on the same directory, and require every acknowledged write back,
// byte-identical, under the default group-commit fsync policy.
package repro_test

import (
	"bufio"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server/client"
)

// qqldProc is one running qqld with its captured output lines.
type qqldProc struct {
	cmd  *exec.Cmd
	addr string

	mu    sync.Mutex
	lines []string
}

func (p *qqldProc) output() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.lines...)
}

// startQQLD launches the built binary and waits for its listening line.
func startQQLD(t *testing.T, bin string, args ...string) *qqldProc {
	t.Helper()
	p := &qqldProc{cmd: exec.Command(bin, args...)}
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = p.cmd.Stdout
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			_ = p.cmd.Process.Kill()
			_ = p.cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.lines = append(p.lines, line)
			p.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "qqld: listening on "); ok {
				if i := strings.IndexByte(rest, ' '); i > 0 {
					rest = rest[:i]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("qqld never announced its address; output so far:\n%s",
			strings.Join(p.output(), "\n"))
	}
	return p
}

// collect renders a query result to one comparable string.
func collect(t *testing.T, c *client.Client, q string) string {
	t.Helper()
	cols, rows, err := c.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	var b strings.Builder
	b.WriteString(strings.Join(cols, "\t") + "\n")
	for _, r := range rows {
		b.WriteString(strings.Join(r, "\t") + "\n")
	}
	return b.String()
}

// TestQQLDSurvivesKill9 is the tentpole's end-to-end claim: a SIGKILL —
// no shutdown hook, no final flush — loses nothing that was acknowledged.
func TestQQLDSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the qqld binary")
	}
	bin := filepath.Join(t.TempDir(), "qqld")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/qqld").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/qqld: %v\n%s", err, out)
	}
	dataDir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-data", dataDir, "-now", "1992-01-01T00:00:00Z"}

	p1 := startQQLD(t, bin, args...)
	c1, err := client.Dial(p1.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Exec(`CREATE TABLE emp (
		id int REQUIRED,
		name string QUALITY (source string)
	) KEY (id)`); err != nil {
		t.Fatal(err)
	}
	const rows = 300
	const batch = 50
	for lo := 0; lo < rows; lo += batch {
		qs := make([]string, 0, batch)
		for i := lo; i < lo+batch; i++ {
			qs = append(qs, fmt.Sprintf(
				`INSERT INTO emp VALUES (%d, 'n%04d' @ {source: 'hr'})`, i, i))
		}
		resps, err := c1.ExecBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range resps {
			if r.Err != "" {
				t.Fatalf("statement %d: %s", lo+i, r.Err)
			}
		}
	}
	queries := []string{
		`SELECT id, name FROM emp ORDER BY id`,
		`SELECT COUNT(*) AS n FROM emp`,
		`SELECT COUNT(*) AS n FROM emp WITH QUALITY name@source = 'hr'`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = collect(t, c1, q)
	}

	// No shutdown hook gets to run: SIGKILL, then wait for the process to
	// be fully gone so the restart sees whatever the crash left.
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = p1.cmd.Wait()
	if _, err := c1.Do(`SELECT COUNT(*) AS n FROM emp`); err == nil {
		t.Fatal("killed server still answering")
	}

	p2 := startQQLD(t, bin, args...)
	recovered := false
	for _, line := range p2.output() {
		if strings.HasPrefix(line, "qqld: recovered ") {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("second boot printed no recovery line:\n%s", strings.Join(p2.output(), "\n"))
	}
	c2, err := client.Dial(p2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i, q := range queries {
		if got := collect(t, c2, q); got != want[i] {
			t.Fatalf("%s diverged after kill -9:\ngot:\n%s\nwant:\n%s", q, got, want[i])
		}
	}
	// The recovered server keeps accepting durable writes.
	if _, err := c2.Exec(`INSERT INTO emp VALUES (9999, 'late')`); err != nil {
		t.Fatal(err)
	}
	n, err := c2.QueryInt(`SELECT COUNT(*) AS n FROM emp`)
	if err != nil || n != rows+1 {
		t.Fatalf("post-recovery count = %d, %v; want %d", n, err, rows+1)
	}
}
